"""Scheduler interface and shared placement helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.sim.process import SimProcess, SimThread, ThreadId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import World


class Scheduler(ABC):
    """Maps runnable threads onto hardware threads each tick.

    Schedulers must respect process affinity masks (as the Linux scheduler
    respects cpusets / sched_setaffinity); the engine validates this.
    """

    name: str = "scheduler"

    @abstractmethod
    def place(self, world: "World") -> dict[ThreadId, int]:
        """Return a thread→hardware-thread placement for this tick."""

    def placement_signature(self, world: "World") -> tuple | None:
        """Hashable key of everything ``place`` depends on, or ``None``.

        When a scheduler returns a signature, the engine's vectorized mode
        reuses the previous tick's placement as long as the signature is
        unchanged — placements are only recomputed when the runnable
        thread set or an affinity mask (i.e. the HARP allocation) actually
        changes.  Schedulers whose decisions also depend on continuously
        varying state (PELT utilization, run-queue history) must return
        ``None`` to opt out of caching.
        """
        return None

    def next_preemption_tick(self, world: "World") -> int | None:
        """Earliest future tick at which the placement may move on its own.

        The event engine's busy-stretch fast-forward assumes that while
        the placement signature is unchanged the placement itself is
        unchanged.  A scheduler whose decisions additionally depend on
        *time* — a round-robin quantum, a periodic rebalance — must report
        the first tick index at which that dependency expires; busy leaps
        never cross it.  ``None`` means the placement is a pure function
        of the signature and never expires by itself (true for CFS, ITD
        and pinned placement).  Schedulers that already opt out of the
        signature cache (``placement_signature() is None``) are never
        leapt over, but should still report honestly.
        """
        return None

    @staticmethod
    def runnable(world: "World") -> list[tuple[SimProcess, SimThread]]:
        """All (process, thread) pairs eligible to run, deterministic order.

        Threads with (near-)zero CPU demand are sleeping — a blocked
        daemon does not sit on a run queue — and are skipped entirely.
        Pairs come in ascending-pid order (spawn order; pids are never
        reused) from the world's per-tick snapshot, so calling this
        several times in one tick costs one pass over the live processes.
        """
        return world.runnable_pairs()

    @staticmethod
    def allowed_hw_threads(world: "World", process: SimProcess) -> list[int]:
        """Hardware threads the process may run on, in id order."""
        all_ids = world._hw_ids
        if process.affinity is None:
            return all_ids
        return [i for i in all_ids if i in process.affinity]
