"""The event-heap execution engine.

:class:`EventWorld` subclasses the fixed-tick :class:`~repro.sim.engine.World`
with a heap of typed future events (thread wakeups, process arrivals,
completions, quantum expiries, RT periods, monitor epochs, scheduled
reallocations, fault injections).  Whenever nothing is runnable and no
listener needs per-tick callbacks, the engine *leaps* directly to the next
event's tick, integrating idle power analytically over the whole interval
instead of stepping through it — idle sim time costs (almost) zero CPU.

Bit-parity contract
-------------------
On tick-equivalent scenarios the event engine reproduces the tick engine
**bit for bit**: same ``time_s`` (the leap replays the per-tick float
additions), same sensor energy (noise draws are batched through
``default_rng``, which consumes the bitstream identically to scalar
draws), same PELT trajectories (per-tick decay multiplies are replayed),
same per-type energy accumulators (same accumulation order per engine
mode), and identical process completion order.  The parity suite in
``tests/test_eventsim.py`` asserts this across all four schedulers.

Listeners attach to ``world.on_event`` (fired at every advance boundary —
every tick while stepping, once per leap) and MUST route timed work
through :meth:`World.request_wakeup`; a wakeup guarantees the engine
visits that tick.  Wakeups are scheduled conservatively (up to one tick
early against the drifted cumulative clock) — a listener whose deadline
has not arrived yet simply re-requests and is woken on the next tick,
which converges on exactly the tick the tick engine would have fired.
"""

from __future__ import annotations

import heapq
import itertools
import math
from enum import Enum
from typing import Callable

import numpy as np

from repro.obs import OBS
from repro.platform.dvfs import Governor
from repro.platform.topology import Platform
from repro.sim.engine import TickStats, World
from repro.sim.process import _PELT_HALFLIFE_S


class EventKind(Enum):
    """Taxonomy of heap events (labels for tracing and debugging)."""

    TIMER = "timer"            # generic requested wakeup
    WAKEUP = "wakeup"          # a thread/session becomes runnable
    BLOCK = "block"            # a session stops consuming CPU
    SPAWN = "spawn"            # process arrival
    COMPLETION = "completion"  # process expected to finish its work
    QUANTUM = "quantum"        # scheduler quantum expiry
    RT_PERIOD = "rt_period"    # real-time period boundary
    MONITOR = "monitor"        # monitor / sample epoch
    REALLOC = "realloc"        # scheduled reallocation / epoch flush
    FAULT = "fault"            # fault-plan injection point


class EventWorld(World):
    """Event-driven world: identical API, idle time leaps for free."""

    event_driven = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._heap: list[tuple[int, int, EventKind, Callable | None]] = []
        self._seq = itertools.count()
        self._wakeup_ticks: set[int] = set()
        # Idle-tick package power per integration mode.  These replicate
        # the exact accumulation order of the corresponding per-tick
        # integration path, so leaps stay bit-identical:
        #   vectorized: uncore + numpy pairwise sum over the core array
        #   reference:  uncore, then += idle_w per core in core order
        self._idle_pkg_vec = self.platform.uncore_power_w + float(
            self._core_idle_w.sum()
        )
        pkg = self.platform.uncore_power_w
        for core in self.platform.cores:
            pkg += core.core_type.idle_power_w
        self._idle_pkg_ref = pkg
        # Per-tick per-type idle energy increments, again per mode.
        idle_by_type = np.bincount(
            self._core_type_idx,
            weights=self._core_idle_w,
            minlength=len(self._type_names),
        )
        self._idle_tick_energy_vec = [
            (name, float(e) * self.tick_s)
            for name, e in zip(self._type_names, idle_by_type)
        ]
        self._idle_tick_energy_ref = [
            (core.core_type.name, core.core_type.idle_power_w * self.tick_s)
            for core in self.platform.cores
        ]

    # -- event heap --------------------------------------------------------------

    def _tick_for(self, at_s: float) -> int:
        """Tick index at which a wakeup for sim time ``at_s`` fires.

        Conservatively early: the cumulative float clock drifts ~3e-8 s
        per simulated hour off the nominal ``tick * tick_s`` grid, so the
        wakeup lands up to one tick before the deadline test passes and
        the listener re-requests.  Never at or before the current tick —
        a re-request from a boundary callback always lands strictly in
        the future, which is what makes the recheck loop converge.
        """
        return max(self.tick_index + 1, math.ceil((at_s - 1e-6) / self.tick_s))

    def request_wakeup(self, at_s: float, kind: object = EventKind.TIMER) -> None:
        """Guarantee the engine visits the tick covering sim time ``at_s``."""
        tick = self._tick_for(at_s)
        if tick in self._wakeup_ticks:
            return
        self._wakeup_ticks.add(tick)
        kind = kind if isinstance(kind, EventKind) else EventKind.TIMER
        heapq.heappush(self._heap, (tick, next(self._seq), kind, None))

    def schedule(
        self,
        at_s: float,
        callback: Callable[["EventWorld"], None],
        kind: EventKind = EventKind.TIMER,
    ) -> int:
        """Run ``callback(world)`` at the boundary covering ``at_s``.

        Callbacks fire after ``on_event`` listeners, in (time, insertion)
        order; returns the tick index they are scheduled for.
        """
        tick = self._tick_for(at_s)
        heapq.heappush(self._heap, (tick, next(self._seq), kind, callback))
        return tick

    def next_event_tick(self) -> int | None:
        """Tick of the earliest pending event, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def _drain_due(self) -> None:
        """Pop every event at or before the current tick; run callbacks."""
        while self._heap and self._heap[0][0] <= self.tick_index:
            tick, _, _, callback = heapq.heappop(self._heap)
            if callback is None:
                self._wakeup_ticks.discard(tick)
            else:
                callback(self)

    # -- advancing ---------------------------------------------------------------

    def _has_runnable(self) -> bool:
        # Fills the world's per-tick runnable snapshot, which the step
        # that follows (if any) reuses — probing costs nothing extra.
        return bool(self.runnable_pairs())

    def _advance_one(self, limit_tick: int) -> None:
        """Advance to the next boundary, never past ``limit_tick``.

        Steps normally whenever per-tick work can happen (something is
        runnable, or a legacy ``on_tick`` listener is attached); otherwise
        leaps to the earlier of the next heap event and the limit.
        """
        if self.on_tick or self._has_runnable():
            self.step()
            self._drain_due()
            return
        next_tick = self._heap[0][0] if self._heap else None
        leap_to = limit_tick if next_tick is None else min(next_tick, limit_tick)
        n = leap_to - self.tick_index
        if n <= 1:
            self.step()
            self._drain_due()
            return
        self._leap(n)
        for callback in self.on_event:
            callback(self)
        self._drain_due()

    def run_for(self, seconds: float) -> None:
        """Advance by a fixed duration (event-driven)."""
        target = self.tick_index + self.ticks_in(seconds)
        while self.tick_index < target:
            self._advance_one(target)

    def run_until_all_finished(self, max_seconds: float = 10_000.0) -> float:
        """Run until every process finished; returns the makespan."""
        max_ticks = int(max_seconds / self.tick_s + 1e-9)
        while any(not p.daemon for p in self.running_processes()):
            if self.tick_index > max_ticks:
                raise RuntimeError(
                    f"simulation exceeded {max_seconds}s without finishing"
                )
            self._advance_one(max_ticks + 1)
        finish_times = [
            p.finish_time_s
            for p in self.processes.values()
            if p.finish_time_s is not None
        ]
        return max(finish_times) if finish_times else self.time_s

    # -- the leap ----------------------------------------------------------------

    def _leap(self, n: int) -> None:
        """Replay ``n`` fully idle ticks in one analytic jump.

        Preconditions (enforced by :meth:`_advance_one`): no runnable
        thread and no ``on_tick`` listener.  Everything a tick would have
        mutated is replayed bit-identically: the cumulative clock, the
        package sensor (batched noise draws), per-type energy
        accumulators in each mode's accumulation order, PELT decay of
        blocked threads, core-utilization state, the placement-signature
        cache, and the obs tick/placement counters.
        """
        dt = self.tick_s
        obs_on = OBS.enabled
        t0_wall = OBS.walltime() if obs_on else 0.0

        # Placement-cache bookkeeping: with live-but-blocked processes the
        # tick engine still consults the signature each tick (an empty
        # runnable set hashes to an empty signature); with no processes it
        # short-circuits before touching the cache.
        hits = misses = 0
        if self._running and self.vectorized:
            sig = self.scheduler.placement_signature(self)
            if sig is None:
                misses = n
            elif sig == self._placement_sig:
                hits = n
            else:
                self._placement_sig = sig
                self._placement_cache = {}
                misses, hits = 1, n - 1

        # PELT decay for every blocked thread still holding a nonzero
        # average (the world's ``_decaying`` set — zero is an exact fixed
        # point, so the rest can be skipped bit-identically): u *= decay,
        # n times, with numpy broadcasting across threads (elementwise
        # IEEE multiply is bit-identical to the scalar loop).  Once every
        # tracked thread has decayed to exactly 0.0 the remaining
        # iterations are no-ops and the loop exits early.
        decaying = self._decaying
        if decaying:
            tids = list(decaying)
            utils = np.array(
                [decaying[tid].utilization for tid in tids], dtype=float
            )
            decay = 0.5 ** (dt / _PELT_HALFLIFE_S)
            remaining = n
            while remaining > 0:
                chunk = min(remaining, 256)
                for _ in range(chunk):
                    utils *= decay
                remaining -= chunk
                if not utils.any():
                    break
            for tid, u in zip(tids, utils.tolist()):
                decaying[tid].utilization = u
                if u == 0.0:  # harplint: disable=HL003 -- underflow to the exact fixed point
                    del decaying[tid]

        # Idle power: constant across the leap and freq-independent (zero
        # busy fractions short-circuit the DVFS scale), so the package
        # sensor integrates n equal deltas and the per-type accumulators
        # replay the per-tick adds in each mode's order.
        if self.vectorized:
            package_power = self._idle_pkg_vec
            tick_energy = self._idle_tick_energy_vec
        else:
            package_power = self._idle_pkg_ref
            tick_energy = self._idle_tick_energy_ref
        acc = self.energy_by_type_j
        for _ in range(n):
            for name, energy in tick_energy:
                acc[name] += energy
        self.package_sensor.accumulate_constant(package_power, dt, n)
        # busy_time accumulators gain exactly +0.0 per idle tick — a
        # bitwise no-op — so they are left untouched.
        self._core_util = {core_id: 0.0 for core_id in self._core_ids}

        # The cumulative clock replays every per-tick addition (n float
        # adds), capturing the start time of the final tick for stats.
        t = self.time_s
        for _ in range(n - 1):
            t += dt
        stats = TickStats(time_s=t)
        stats.package_power_w = package_power
        for name in self._type_names:
            stats.busy_time_by_type[name] = 0.0
        for name, energy in tick_energy:
            stats.energy_by_type_j[name] = (
                stats.energy_by_type_j.get(name, 0.0) + energy
            )
        self.last_stats = stats
        self.time_s = t + dt
        self.tick_index += n

        if obs_on:
            handles = self._obs_hot()
            handles[1].inc(n)
            handles[2].observe(OBS.walltime() - t0_wall)
            if hits:
                handles[3].inc(hits)
            if misses:
                handles[4].inc(misses)
            OBS.counter("sim.leaps").inc()
            OBS.counter("sim.leap_ticks").inc(n)


def make_world(
    platform: Platform,
    scheduler,
    engine: str = "tick",
    governor: Governor | None = None,
    tick_s: float = 0.01,
    seed: int | None = None,
    sensor_noise: float = 0.01,
    perf_noise: float = 0.02,
    vectorized: bool = True,
) -> World:
    """Build a world on the selected engine.

    ``engine="tick"`` is the fixed-tick reference implementation;
    ``engine="event"`` is the event-heap engine, bit-compatible on
    tick-equivalent scenarios and orders of magnitude faster when the
    machine has idle stretches.
    """
    if engine == "tick":
        cls: type[World] = World
    elif engine == "event":
        cls = EventWorld
    else:
        raise ValueError(f"unknown engine {engine!r} (want 'tick' or 'event')")
    return cls(
        platform,
        scheduler,
        governor=governor,
        tick_s=tick_s,
        seed=seed,
        sensor_noise=sensor_noise,
        perf_noise=perf_noise,
        vectorized=vectorized,
    )
