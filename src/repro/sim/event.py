"""The event-heap execution engine.

:class:`EventWorld` subclasses the fixed-tick :class:`~repro.sim.engine.World`
with a heap of typed future events (thread wakeups, process arrivals,
completions, quantum expiries, RT periods, monitor epochs, scheduled
reallocations, fault injections).  Whenever nothing is runnable and no
listener needs per-tick callbacks, the engine *leaps* directly to the next
event's tick, integrating idle power analytically over the whole interval
instead of stepping through it — idle sim time costs (almost) zero CPU.

Bit-parity contract
-------------------
On tick-equivalent scenarios the event engine reproduces the tick engine
**bit for bit**: same ``time_s`` (the leap replays the per-tick float
additions), same sensor energy (noise draws are batched through
``default_rng``, which consumes the bitstream identically to scalar
draws), same PELT trajectories (per-tick decay multiplies are replayed),
same per-type energy accumulators (same accumulation order per engine
mode), and identical process completion order.  The parity suite in
``tests/test_eventsim.py`` asserts this across all four schedulers.

Listeners attach to ``world.on_event`` (fired at every advance boundary —
every tick while stepping, once per leap) and MUST route timed work
through :meth:`World.request_wakeup`; a wakeup guarantees the engine
visits that tick.  Wakeups are scheduled conservatively (up to one tick
early against the drifted cumulative clock) — a listener whose deadline
has not arrived yet simply re-requests and is woken on the next tick,
which converges on exactly the tick the tick engine would have fired.
"""

from __future__ import annotations

import heapq
import itertools
import math
from enum import Enum
from typing import Callable

import numpy as np

from repro.obs import OBS
from repro.platform.dvfs import Governor
from repro.platform.topology import Platform
from repro.sim.engine import TickStats, ThreadSlot, World
from repro.sim.process import (
    _PELT_HALFLIFE_S,
    _decay_for,
    SimThread,
    ticks_until_work_expiry,
)


class EventKind(Enum):
    """Taxonomy of heap events (labels for tracing and debugging)."""

    TIMER = "timer"            # generic requested wakeup
    WAKEUP = "wakeup"          # a thread/session becomes runnable
    BLOCK = "block"            # a session stops consuming CPU
    SPAWN = "spawn"            # process arrival
    COMPLETION = "completion"  # process expected to finish its work
    QUANTUM = "quantum"        # scheduler quantum expiry
    RT_PERIOD = "rt_period"    # real-time period boundary
    MONITOR = "monitor"        # monitor / sample epoch
    REALLOC = "realloc"        # scheduled reallocation / epoch flush
    FAULT = "fault"            # fault-plan injection point


#: A busy leap must replace at least this many ticks to pay for its
#: pattern evaluation (which costs about one tick of work).
_MIN_BUSY_LEAP_TICKS = 2

#: After a failed busy-leap probe, skip probing for this many ticks: the
#: conditions that break a probe (an RM daemon holding a slot, a governor
#: not yet at its fixpoint, an imminent completion) persist for a few
#: ticks, and re-probing every tick would cost more than stepping.
_BUSY_LEAP_BACKOFF_TICKS = 4


class EventWorld(World):
    """Event-driven world: identical API, idle AND stable busy stretches
    leap for free."""

    event_driven = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._heap: list[tuple[int, int, EventKind, Callable | None]] = []
        self._seq = itertools.count()
        self._wakeup_ticks: set[int] = set()
        self._busy_backoff_until = 0
        # Idle-tick package power per integration mode.  These replicate
        # the exact accumulation order of the corresponding per-tick
        # integration path, so leaps stay bit-identical:
        #   vectorized: uncore + numpy pairwise sum over the core array
        #   reference:  uncore, then += idle_w per core in core order
        self._idle_pkg_vec = self.platform.uncore_power_w + float(
            self._core_idle_w.sum()
        )
        pkg = self.platform.uncore_power_w
        for core in self.platform.cores:
            pkg += core.core_type.idle_power_w
        self._idle_pkg_ref = pkg
        # Per-tick per-type idle energy increments, again per mode.
        idle_by_type = np.bincount(
            self._core_type_idx,
            weights=self._core_idle_w,
            minlength=len(self._type_names),
        )
        self._idle_tick_energy_vec = [
            (name, float(e) * self.tick_s)
            for name, e in zip(self._type_names, idle_by_type)
        ]
        self._idle_tick_energy_ref = [
            (core.core_type.name, core.core_type.idle_power_w * self.tick_s)
            for core in self.platform.cores
        ]

    # -- event heap --------------------------------------------------------------

    def _tick_for(self, at_s: float) -> int:
        """Tick index at which a wakeup for sim time ``at_s`` fires.

        Conservatively early: the cumulative float clock drifts ~3e-8 s
        per simulated hour off the nominal ``tick * tick_s`` grid, so the
        wakeup lands up to one tick before the deadline test passes and
        the listener re-requests.  Never at or before the current tick —
        a re-request from a boundary callback always lands strictly in
        the future, which is what makes the recheck loop converge.
        """
        return max(self.tick_index + 1, math.ceil((at_s - 1e-6) / self.tick_s))

    def request_wakeup(self, at_s: float, kind: object = EventKind.TIMER) -> None:
        """Guarantee the engine visits the tick covering sim time ``at_s``."""
        tick = self._tick_for(at_s)
        if tick in self._wakeup_ticks:
            return
        self._wakeup_ticks.add(tick)
        kind = kind if isinstance(kind, EventKind) else EventKind.TIMER
        heapq.heappush(self._heap, (tick, next(self._seq), kind, None))

    def schedule(
        self,
        at_s: float,
        callback: Callable[["EventWorld"], None],
        kind: EventKind = EventKind.TIMER,
    ) -> int:
        """Run ``callback(world)`` at the boundary covering ``at_s``.

        Callbacks fire after ``on_event`` listeners, in (time, insertion)
        order; returns the tick index they are scheduled for.
        """
        tick = self._tick_for(at_s)
        heapq.heappush(self._heap, (tick, next(self._seq), kind, callback))
        return tick

    def next_event_tick(self) -> int | None:
        """Tick of the earliest pending event, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def _drain_due(self) -> None:
        """Pop every event at or before the current tick; run callbacks."""
        while self._heap and self._heap[0][0] <= self.tick_index:
            tick, _, _, callback = heapq.heappop(self._heap)
            if callback is None:
                self._wakeup_ticks.discard(tick)
            else:
                callback(self)

    # -- advancing ---------------------------------------------------------------

    def _has_runnable(self) -> bool:
        # Fills the world's per-tick runnable snapshot, which the step
        # that follows (if any) reuses — probing costs nothing extra.
        return bool(self.runnable_pairs())

    def _advance_one(self, limit_tick: int) -> None:
        """Advance to the next boundary, never past ``limit_tick``.

        A legacy ``on_tick`` listener forces per-tick stepping.  Otherwise
        the tick budget to the next heap event (or the limit) is leapt:
        via the idle leap when nothing is runnable, via the busy-stretch
        fast-forward when the runnable set is in a stable stretch.  A
        failed busy probe steps normally and backs off for a few ticks.
        """
        if self.on_tick:
            self.step()
            self._drain_due()
            return
        runnable = self._has_runnable()
        next_tick = self._heap[0][0] if self._heap else None
        leap_to = limit_tick if next_tick is None else min(next_tick, limit_tick)
        budget = leap_to - self.tick_index
        if runnable:
            if (
                budget >= _MIN_BUSY_LEAP_TICKS
                and self.tick_index >= self._busy_backoff_until
            ):
                if self._try_busy_leap(budget):
                    for callback in self.on_event:
                        callback(self)
                    self._drain_due()
                    return
                self._busy_backoff_until = (
                    self.tick_index + _BUSY_LEAP_BACKOFF_TICKS
                )
            self.step()
            self._drain_due()
            return
        if budget <= 1:
            self.step()
            self._drain_due()
            return
        self._leap(budget)
        for callback in self.on_event:
            callback(self)
        self._drain_due()

    def run_for(self, seconds: float) -> None:
        """Advance by a fixed duration (event-driven)."""
        target = self.tick_index + self.ticks_in(seconds)
        while self.tick_index < target:
            self._advance_one(target)

    def run_until_all_finished(self, max_seconds: float | None = 10_000.0) -> float:
        """Run until every process finished; returns the makespan.

        Hitting ``max_seconds`` raises rather than silently truncating
        the scenario; ``max_seconds=None`` opts into an unbounded run,
        advancing in hour-sized leap windows until the workload drains.
        """
        max_ticks = (
            None if max_seconds is None else int(max_seconds / self.tick_s + 1e-9)
        )
        while any(not p.daemon for p in self.running_processes()):
            if max_ticks is None:
                self._advance_one(self.tick_index + 360_000)
            else:
                if self.tick_index > max_ticks:
                    raise RuntimeError(
                        f"simulation exceeded {max_seconds}s without finishing"
                    )
                self._advance_one(max_ticks + 1)
        finish_times = [
            p.finish_time_s
            for p in self.processes.values()
            if p.finish_time_s is not None
        ]
        return max(finish_times) if finish_times else self.time_s

    # -- the leap ----------------------------------------------------------------

    def _leap(self, n: int) -> None:
        """Replay ``n`` fully idle ticks in one analytic jump.

        Preconditions (enforced by :meth:`_advance_one`): no runnable
        thread and no ``on_tick`` listener.  Everything a tick would have
        mutated is replayed bit-identically: the cumulative clock, the
        package sensor (batched noise draws), per-type energy
        accumulators in each mode's accumulation order, PELT decay of
        blocked threads, core-utilization state, the placement-signature
        cache, and the obs tick/placement counters.
        """
        dt = self.tick_s
        obs_on = OBS.enabled
        t0_wall = OBS.walltime() if obs_on else 0.0

        # Placement-cache bookkeeping: with live-but-blocked processes the
        # tick engine still consults the signature each tick (an empty
        # runnable set hashes to an empty signature); with no processes it
        # short-circuits before touching the cache.
        hits = misses = 0
        if self._running and self.vectorized:
            sig = self.scheduler.placement_signature(self)
            if sig is None:
                misses = n
            elif sig == self._placement_sig:
                hits = n
            else:
                self._placement_sig = sig
                self._placement_cache = {}
                misses, hits = 1, n - 1

        # PELT decay for every blocked thread still holding a nonzero
        # average (the world's ``_decaying`` set — zero is an exact fixed
        # point, so the rest can be skipped bit-identically): u *= decay,
        # n times, with numpy broadcasting across threads (elementwise
        # IEEE multiply is bit-identical to the scalar loop).  Once every
        # tracked thread has decayed to exactly 0.0 the remaining
        # iterations are no-ops and the loop exits early.
        decaying = self._decaying
        if decaying:
            tids = list(decaying)
            utils = np.array(
                [decaying[tid].utilization for tid in tids], dtype=float
            )
            decay = 0.5 ** (dt / _PELT_HALFLIFE_S)
            remaining = n
            while remaining > 0:
                chunk = min(remaining, 256)
                for _ in range(chunk):
                    utils *= decay
                remaining -= chunk
                if not utils.any():
                    break
            for tid, u in zip(tids, utils.tolist()):
                decaying[tid].utilization = u
                if u == 0.0:  # harplint: disable=HL003 -- underflow to the exact fixed point
                    del decaying[tid]

        # Idle power: constant across the leap and freq-independent (zero
        # busy fractions short-circuit the DVFS scale), so the package
        # sensor integrates n equal deltas and the per-type accumulators
        # replay the per-tick adds in each mode's order.
        if self.vectorized:
            package_power = self._idle_pkg_vec
            tick_energy = self._idle_tick_energy_vec
        else:
            package_power = self._idle_pkg_ref
            tick_energy = self._idle_tick_energy_ref
        acc = self.energy_by_type_j
        for _ in range(n):
            for name, energy in tick_energy:
                acc[name] += energy
        self.package_sensor.accumulate_constant(package_power, dt, n)
        # busy_time accumulators gain exactly +0.0 per idle tick — a
        # bitwise no-op — so they are left untouched.
        self._core_util = {core_id: 0.0 for core_id in self._core_ids}

        # The cumulative clock replays every per-tick addition (n float
        # adds), capturing the start time of the final tick for stats.
        t = self.time_s
        for _ in range(n - 1):
            t += dt
        stats = TickStats(time_s=t)
        stats.package_power_w = package_power
        for name in self._type_names:
            stats.busy_time_by_type[name] = 0.0
        for name, energy in tick_energy:
            stats.energy_by_type_j[name] = (
                stats.energy_by_type_j.get(name, 0.0) + energy
            )
        self.last_stats = stats
        self.time_s = t + dt
        self.tick_index += n

        if obs_on:
            handles = self._obs_hot()
            handles[1].inc(n)
            handles[2].observe(OBS.walltime() - t0_wall)
            if hits:
                handles[3].inc(hits)
            if misses:
                handles[4].inc(misses)
            OBS.counter("sim.leaps").inc()
            OBS.counter("sim.leap_ticks").inc(n)

    # -- the busy-stretch fast-forward -------------------------------------------

    def _try_busy_leap(self, budget_ticks: int) -> bool:
        """Fast-forward a *stable busy stretch* of up to ``budget_ticks``.

        A stable stretch is an interval over which the runnable set, the
        thread→hardware placement, and the core frequencies are provably
        unchanged, so one tick's scheduler/model/power evaluation (the
        *pattern*) holds for every tick in it.  The stretch ends at the
        earliest of: the caller's budget (next heap event / horizon), the
        scheduler's ``next_preemption_tick``, and each placed process's
        remaining-work or model phase-boundary expiry (with a guard
        margin against float drift).

        Preconditions (enforced by :meth:`_advance_one`): something is
        runnable, no ``on_tick`` listener, budget ≥ 2.  Returns ``False``
        — without mutating anything — when no leapable stretch exists:
        the scheduler opted out of signatures (EAS), a placed model is
        stateful (the RM daemon), the governor's frequencies are not a
        fixpoint of the stretch utilization, or a work boundary is too
        close.

        Everything the replaced ticks would have mutated is replayed
        bit-identically: per-tick float adds to every touched accumulator
        (work, CPU time, perf counters, per-type energy, ground-truth
        attribution) grouped into elementwise array adds, PELT
        accumulate/decay as vectorized per-tick updates, batched sensor
        noise draws, the cumulative clock, and the placement-cache and
        obs bookkeeping.
        """
        dt = self.tick_s
        obs_on = OBS.enabled
        t0_wall = OBS.walltime() if obs_on else 0.0
        sched = self.scheduler
        sig = sched.placement_signature(self)
        if sig is None:
            return False
        n = budget_ticks
        preempt_tick = sched.next_preemption_tick(self)
        if preempt_tick is not None:
            n = min(n, preempt_tick - self.tick_index)
            if n < _MIN_BUSY_LEAP_TICKS:
                return False

        # The stretch placement.  Cache bookkeeping (signature update, obs
        # hit/miss counters) is deferred until the leap commits, so a
        # bailed probe leaves the world exactly as step() expects it.
        pattern_hit = self.vectorized and sig == self._placement_sig
        if pattern_hit:
            placement = self._placement_cache
        else:
            placement = sched.place(self)
            self._validate_placement(placement)
        if not placement:
            return False

        # -- the pattern: one tick of step()'s work, mirrored expression
        # for expression (same fold orders), with no mutation ----------------
        threads_on_hw: dict[int, list] = {}
        for tid, hw_id in placement.items():
            threads_on_hw.setdefault(hw_id, []).append(tid)
        proc_demand = self._proc_demand
        demand: dict = {}
        for tid in placement:
            demand[tid] = proc_demand[tid.pid]
        shares: dict = {}
        for hw_id, tids in threads_on_hw.items():
            total = sum(demand[tid] for tid in tids)
            if total <= 1.0:
                for tid in tids:
                    shares[tid] = demand[tid] if demand[tid] > 0 else 0.0
            else:
                for tid in tids:
                    shares[tid] = demand[tid] / total
        busy_hw_per_core: dict[int, int] = {}
        for hw_id in threads_on_hw:
            core_id = self._hw_by_id[hw_id].core_id
            busy_hw_per_core[core_id] = busy_hw_per_core.get(core_id, 0) + 1
        freqs = self.governor.select_all(self._core_util)

        # Per-tick accumulator increments, in step()'s execution order.
        # Each op is (is_attr, container, key, increment).
        ops: list[tuple] = []
        pelt_threads: list[SimThread] = []
        pelt_gains: list[float] = []
        decay = _decay_for(dt)
        gain_scale = 1.0 - decay
        busy_fraction: dict[int, float] = {}
        app_busy_on_core: dict[int, dict[int, float]] = {}
        # (process, work_before, work_budget, rate_dt) overrun guards.
        guards: list[tuple] = []
        placed_pids = {tid.pid for tid in placement}
        for pid in sorted(placed_pids):
            process = self.processes[pid]
            slots = []
            slot_threads: list[SimThread] = []
            for thread in process.active_threads:
                hw_id = placement.get(thread.tid)
                if hw_id is None:
                    continue
                hw = self._hw_by_id[hw_id]
                share = shares[thread.tid]
                siblings = busy_hw_per_core[hw.core_id]
                freq = freqs.get(hw.core_id)
                speed = hw.core_type.thread_speed(siblings, freq) * share
                slots.append(
                    ThreadSlot(hw_id, hw.core_id, hw.core_type.name, speed, share)
                )
                slot_threads.append(thread)
            if not slots:
                continue
            # A stateful model (horizon 0) must be screened *before* its
            # perf() is called — the call itself would mutate it.
            horizon = process.model.steady_work_horizon(process)
            if horizon is not None and horizon <= 0.0:
                return False
            perf = process.model.perf(slots, process)
            rate_dt = perf.rate * dt
            if perf.rate > 0:
                work_budget = process.remaining_work()
                if horizon is not None and horizon < work_budget:
                    work_budget = horizon
                k = ticks_until_work_expiry(work_budget, rate_dt)
                if k is not None:
                    if k < n:
                        n = k
                    if n < _MIN_BUSY_LEAP_TICKS:
                        return False
                    guards.append((process, process.work_done, work_budget, rate_dt))
            ops.append((True, process, "work_done", rate_dt))
            cpu_time = 0.0
            for slot, thread, activity in zip(slots, slot_threads, perf.activities):
                used = activity * slot.share
                busy_fraction[slot.hw_thread_id] = (
                    busy_fraction.get(slot.hw_thread_id, 0.0) + used
                )
                app_busy_on_core.setdefault(slot.core_id, {})
                app_busy_on_core[slot.core_id][pid] = (
                    app_busy_on_core[slot.core_id].get(pid, 0.0) + used
                )
                pelt_threads.append(thread)
                pelt_gains.append((activity * slot.share) * gain_scale)
                slot_time = used * dt
                cpu_time += slot_time
                ops.append(
                    (False, process.cpu_time_by_type, slot.core_type, slot_time)
                )
            ops.append((False, self.perf._instructions, pid, perf.ips * dt))
            ops.append((False, self.perf._cpu_time, pid, cpu_time))

        load_ratio = (
            sum(busy_fraction.values()) / self._n_hw_threads
            if busy_fraction
            else 0.0
        )
        superlinear = 0.92 + 0.16 * load_ratio
        if self.vectorized:
            preview = self._power_preview_vectorized(
                busy_fraction, app_busy_on_core, freqs, dt, superlinear
            )
        else:
            preview = self._power_preview_reference(
                busy_fraction, app_busy_on_core, freqs, dt, superlinear
            )
        package_power, core_util, stat_busy, stat_energy, acc_ops = preview
        # Frequency stability: the stretch utilization must reproduce the
        # stretch frequencies, else tick 2 would run at different clocks.
        # Exact dict equality is intended — any moved frequency breaks
        # bit parity.
        if self.governor.select_all(core_util) != freqs:
            return False
        ops.extend(acc_ops)

        # -- commit: replay n identical ticks ---------------------------------
        # Group the per-tick ops by target accumulator, preserving order.
        # Multiple same-tick adds to one accumulator (one per slot, one
        # per core...) must not be pre-summed — float addition does not
        # re-associate — so occurrence r of each accumulator goes into
        # round r, and each round is one elementwise array add per tick
        # (IEEE-identical to the scalar sequence).
        acc_index: dict[tuple[int, object], int] = {}
        acc_meta: list[tuple] = []
        base_vals: list[float] = []
        seen: dict[tuple[int, object], int] = {}
        rounds: list[tuple[list[int], list[float]]] = []
        for is_attr, container, key, inc in ops:
            acc_key = (id(container), key)
            slot_idx = acc_index.get(acc_key)
            if slot_idx is None:
                slot_idx = len(acc_meta)
                acc_index[acc_key] = slot_idx
                acc_meta.append((is_attr, container, key))
                if is_attr:
                    base_vals.append(getattr(container, key))
                else:
                    base_vals.append(container.get(key, 0.0))
            r = seen.get(acc_key, 0)
            seen[acc_key] = r + 1
            if r >= len(rounds):
                rounds.append(([], []))
            rounds[r][0].append(slot_idx)
            rounds[r][1].append(inc)
        vals = np.array(base_vals, dtype=float)
        round_arrays = [
            (np.array(idx, dtype=int), np.array(inc, dtype=float))
            for idx, inc in rounds
        ]
        # PELT: placed threads accumulate (u*decay + gain), everything
        # else in the decaying set just decays — both as elementwise
        # array updates replaying the scalar per-tick arithmetic.
        decaying = self._decaying
        placed_arr = np.array([t.utilization for t in pelt_threads], dtype=float)
        gains_arr = np.array(pelt_gains, dtype=float)
        idle_tids = [tid for tid in decaying if tid not in placement]
        idle_arr = (
            np.array([decaying[tid].utilization for tid in idle_tids], dtype=float)
            if idle_tids
            else None
        )
        for _ in range(n):
            for idx, inc in round_arrays:
                vals[idx] += inc
            placed_arr *= decay
            placed_arr += gains_arr
            if idle_arr is not None:
                idle_arr *= decay

        for (is_attr, container, key), value in zip(acc_meta, vals.tolist()):
            if is_attr:
                setattr(container, key, value)
            else:
                container[key] = value
        for thread, u in zip(pelt_threads, placed_arr.tolist()):
            thread.utilization = u
            if u != 0.0:  # harplint: disable=HL003 -- exact fixed point, not a tolerance check
                decaying[thread.tid] = thread
            else:
                decaying.pop(thread.tid, None)
        if idle_arr is not None:
            for tid, u in zip(idle_tids, idle_arr.tolist()):
                decaying[tid].utilization = u
                if u == 0.0:  # harplint: disable=HL003 -- underflow to the exact fixed point
                    del decaying[tid]

        for process, work_before, work_budget, rate_dt in guards:
            if process.work_done - work_before >= work_budget - 0.5 * rate_dt:
                raise RuntimeError(
                    "busy leap overran a work boundary for pid "
                    f"{process.pid} — expiry prediction bug"
                )

        self.package_sensor.accumulate_constant(package_power, dt, n)
        # The cumulative clock replays every per-tick addition, capturing
        # the start time of the final tick for stats.
        t = self.time_s
        for _ in range(n - 1):
            t += dt
        stats = TickStats(time_s=t)
        stats.package_power_w = package_power
        stats.busy_time_by_type = stat_busy
        stats.energy_by_type_j = stat_energy
        self.last_stats = stats
        self.time_s = t + dt
        self.tick_index += n
        self._core_util = core_util
        if self.vectorized and not pattern_hit:
            self._placement_sig = sig
            self._placement_cache = placement

        if obs_on:
            handles = self._obs_hot()
            handles[1].inc(n)
            handles[2].observe(OBS.walltime() - t0_wall)
            if self.vectorized:
                if pattern_hit:
                    handles[3].inc(n)
                else:
                    handles[4].inc()
                    if n > 1:
                        handles[3].inc(n - 1)
            OBS.counter("sim.busy_leaps").inc()
            OBS.counter("sim.busy_leap_ticks").inc(n)
        return True


def make_world(
    platform: Platform,
    scheduler,
    engine: str = "tick",
    governor: Governor | None = None,
    tick_s: float = 0.01,
    seed: int | None = None,
    sensor_noise: float = 0.01,
    perf_noise: float = 0.02,
    vectorized: bool = True,
) -> World:
    """Build a world on the selected engine.

    ``engine="tick"`` is the fixed-tick reference implementation;
    ``engine="event"`` is the event-heap engine, bit-compatible on
    tick-equivalent scenarios and orders of magnitude faster when the
    machine has idle stretches.
    """
    if engine == "tick":
        cls: type[World] = World
    elif engine == "event":
        cls = EventWorld
    else:
        raise ValueError(f"unknown engine {engine!r} (want 'tick' or 'event')")
    return cls(
        platform,
        scheduler,
        governor=governor,
        tick_s=tick_s,
        seed=seed,
        sensor_noise=sensor_noise,
        perf_noise=perf_noise,
        vectorized=vectorized,
    )
