"""Fleet-scale scenario engine.

Turns the single-shot evaluation scenarios of ``repro.analysis`` into
*fleets*: seeded trace-driven workloads with bursty Poisson/MMPP
arrivals, diurnal cycles, heavy-tailed session lengths, and app-mix
profiles over the existing NPB/TBB/TFLite/KPN application models.  The
:class:`~repro.scenario.driver.TraceDriver` replays a generated trace
against either engine (fixed-tick or event-heap — see
:mod:`repro.sim.event`), and :mod:`repro.scenario.sweep` fans
seeds×scenarios across cores with a ``ProcessPoolExecutor``, merging
per-run JSONL results (``repro.cli sweep``).

See ``docs/fleet_scenarios.md`` for the scenario JSON schema.
"""

from repro.scenario.spec import PROFILES, ScenarioSpec
from repro.scenario.generator import SessionPlan, generate_trace
from repro.scenario.session import FleetSessionModel, make_session_model
from repro.scenario.driver import TraceDriver, run_trace
from repro.scenario.sweep import run_sweep, summarize, sweep_job

__all__ = [
    "PROFILES",
    "ScenarioSpec",
    "SessionPlan",
    "generate_trace",
    "FleetSessionModel",
    "make_session_model",
    "TraceDriver",
    "run_trace",
    "run_sweep",
    "summarize",
    "sweep_job",
]
