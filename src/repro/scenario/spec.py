"""Scenario specifications: the JSON-serializable shape of a fleet run.

A :class:`ScenarioSpec` fully determines a workload trace given a seed —
the generator is a pure function of (spec, seed) — so runs are exactly
reproducible across machines and engines.  The JSON schema is documented
in ``docs/fleet_scenarios.md``; named profiles used by the benchmarks and
CI live in :data:`PROFILES`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields


@dataclass
class ScenarioSpec:
    """Everything that defines a fleet scenario.

    Attributes:
        name: profile identifier (free-form).
        platform: ``"intel"`` or ``"odroid"``.
        scheduler: ``"cfs"`` / ``"eas"`` / ``"itd"`` / ``"pinned"``.
        policy: ``"none"`` (no RM) or ``"harp"`` (a :class:`HarpManager`
            is attached and sessions spawn managed).
        duration_s: simulated fleet time.
        arrival: ``"poisson"`` (time-homogeneous) or ``"mmpp"`` (two-state
            Markov-modulated Poisson: calm/burst dwell times with separate
            rates — the bursty arrival structure of real fleets).
        rate_per_s: arrival rate (the calm-state rate under ``mmpp``).
        burst_rate_per_s: burst-state arrival rate (``mmpp`` only).
        calm_dwell_s / burst_dwell_s: mean exponential dwell time per
            MMPP state.
        diurnal_amplitude: 0..1 sinusoidal thinning of arrivals over
            ``diurnal_period_s`` (0 disables the diurnal cycle).
        diurnal_period_s: period of the diurnal modulation.
        app_mix: model-name → weight over the existing app suites (e.g.
            ``{"ep.C": 2.0, "vgg": 1.0}``); sampled per arrival.
        nthreads_choices: candidate thread counts, sampled per session.
        work_scale_mean: mean multiplier on the base model's
            ``total_work`` (session *size*).
        work_tail: ``"lognormal"``, ``"pareto"``, or ``"fixed"`` —
            heavy-tailed session-length distribution.
        work_sigma: lognormal σ, or Pareto shape α (tail heaviness).
        think_fraction: fraction of a session's lifetime spent *thinking*
            (blocked, zero CPU demand) between compute bursts — this is
            what lets thousands of sessions be concurrently alive while
            only a few are runnable.
        think_mean_s: mean think-phase duration.
        burst_mean_s: mean compute-burst duration (phase lengths are
            exponential around these means).
        max_live: admission cap on concurrently alive sessions
            (None = unbounded).
    """

    name: str = "custom"
    platform: str = "intel"
    scheduler: str = "cfs"
    policy: str = "none"
    duration_s: float = 60.0
    arrival: str = "poisson"
    rate_per_s: float = 0.5
    burst_rate_per_s: float = 0.0
    calm_dwell_s: float = 20.0
    burst_dwell_s: float = 5.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86_400.0
    app_mix: dict[str, float] = field(
        default_factory=lambda: {"ep.C": 1.0, "cg.C": 1.0, "is.C": 1.0}
    )
    nthreads_choices: list[int] = field(default_factory=lambda: [1, 2, 4])
    work_scale_mean: float = 0.02
    work_tail: str = "lognormal"
    work_sigma: float = 1.0
    think_fraction: float = 0.0
    think_mean_s: float = 2.0
    burst_mean_s: float = 0.5
    max_live: int | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.arrival not in ("poisson", "mmpp"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.work_tail not in ("lognormal", "pareto", "fixed"):
            raise ValueError(f"unknown work_tail {self.work_tail!r}")
        if not 0.0 <= self.think_fraction < 1.0:
            raise ValueError("think_fraction must be in [0, 1)")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if not self.app_mix:
            raise ValueError("app_mix must not be empty")

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


#: Named profiles used by benchmarks, CI, and the CLI.  ``idle-heavy``
#: exercises the event engine's leap path (sparse arrivals, machine
#: mostly idle); ``bursty-1k`` sustains ≥1k concurrently alive sessions
#: with MMPP bursts and heavy thinking; ``steady-64`` is a dense
#: always-busy fleet where tick and event engines do the same work;
#: ``diurnal-day`` compresses a day-shaped load curve into one hour.
PROFILES: dict[str, ScenarioSpec] = {
    "idle-heavy": ScenarioSpec(
        name="idle-heavy",
        duration_s=600.0,
        arrival="poisson",
        rate_per_s=0.02,
        app_mix={"ep.C": 1.0, "is.C": 1.0},
        nthreads_choices=[2, 4],
        work_scale_mean=0.01,
        work_sigma=0.5,
    ),
    "bursty-1k": ScenarioSpec(
        name="bursty-1k",
        duration_s=3600.0,
        arrival="mmpp",
        rate_per_s=0.5,
        burst_rate_per_s=4.0,
        calm_dwell_s=45.0,
        burst_dwell_s=8.0,
        app_mix={"ep.C": 2.0, "is.C": 2.0, "cg.C": 1.0, "alexnet": 1.0},
        nthreads_choices=[1, 2],
        work_scale_mean=0.25,
        work_sigma=1.2,
        think_fraction=0.97,
        think_mean_s=90.0,
        burst_mean_s=0.3,
        max_live=4000,
    ),
    "steady-64": ScenarioSpec(
        name="steady-64",
        duration_s=120.0,
        arrival="poisson",
        rate_per_s=4.0,
        app_mix={"ep.C": 1.0, "cg.C": 1.0, "is.C": 1.0, "lu.C": 1.0},
        nthreads_choices=[1, 2, 4],
        work_scale_mean=0.05,
        work_sigma=0.8,
        max_live=64,
    ),
    "steady-10k": ScenarioSpec(
        name="steady-10k",
        duration_s=3600.0,
        arrival="poisson",
        rate_per_s=4.0,
        app_mix={"ep.C": 2.0, "is.C": 2.0, "cg.C": 1.0},
        nthreads_choices=[1, 2],
        work_scale_mean=0.35,
        work_sigma=0.6,
        think_fraction=0.97,
        think_mean_s=240.0,
        burst_mean_s=0.8,
        max_live=12_000,
    ),
    "diurnal-day": ScenarioSpec(
        name="diurnal-day",
        duration_s=3600.0,
        arrival="poisson",
        rate_per_s=2.0,
        diurnal_amplitude=0.9,
        diurnal_period_s=3600.0,
        app_mix={"ep.C": 2.0, "is.C": 1.0, "vgg": 1.0},
        nthreads_choices=[1, 2],
        work_scale_mean=0.02,
        work_sigma=1.0,
        think_fraction=0.9,
        think_mean_s=20.0,
        burst_mean_s=0.5,
    ),
}
