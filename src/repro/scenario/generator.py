"""Seeded trace generation: (spec, seed) → a list of session plans.

The generator is a pure function — all randomness comes from one
``numpy`` ``default_rng`` seeded from (spec hash, seed), so the same spec
and seed produce the same trace on every machine, engine, and worker
process.  Arrival processes:

* **poisson** — homogeneous Poisson via exponential inter-arrival gaps.
* **mmpp** — two-state Markov-modulated Poisson: exponential dwell times
  alternate a calm state (``rate_per_s``) and a burst state
  (``burst_rate_per_s``), producing the bursty arrival structure fleet
  traces show.

Either process is then *thinned* by the diurnal profile: an arrival at
time t survives with probability ``λ(t)/λ_max`` where
``λ(t) ∝ 1 + A·sin(2πt/T)`` — standard thinning for inhomogeneous
Poisson processes.

Session sizes are heavy-tailed (lognormal or Pareto multipliers on the
base model's ``total_work``), and interactive sessions get a precomputed
cycle of exponential (burst, think) phase durations.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.scenario.spec import ScenarioSpec

#: Number of precomputed (burst, think) phase pairs per interactive
#: session; the driver cycles through them, so the pattern repeats for
#: very long-lived sessions.
_PHASE_CYCLE = 32


@dataclass
class SessionPlan:
    """One planned session: when it arrives and how it behaves."""

    arrival_s: float
    app: str
    nthreads: int
    work_scale: float
    #: Alternating (burst_s, think_s) pairs; empty for batch sessions
    #: that run uninterrupted to completion.
    phases: list[tuple[float, float]] = field(default_factory=list)


def _trace_seed(spec: ScenarioSpec, seed: int) -> int:
    """Stable 64-bit stream seed from the spec content and the run seed."""
    digest = hashlib.sha256(
        (spec.to_json() + f"\n#{seed}").encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


def _arrival_times(spec: ScenarioSpec, rng: np.random.Generator) -> list[float]:
    times: list[float] = []
    if spec.arrival == "poisson":
        t = 0.0
        rate = spec.rate_per_s
        if rate <= 0:
            return times
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= spec.duration_s:
                break
            times.append(t)
        return times
    # MMPP: alternate calm/burst dwells, each dwell a homogeneous Poisson
    # segment at that state's rate.
    t = 0.0
    burst = False
    while t < spec.duration_s:
        dwell_mean = spec.burst_dwell_s if burst else spec.calm_dwell_s
        dwell_end = t + rng.exponential(max(dwell_mean, 1e-9))
        rate = spec.burst_rate_per_s if burst else spec.rate_per_s
        if rate > 0:
            tt = t
            while True:
                tt += rng.exponential(1.0 / rate)
                if tt >= dwell_end or tt >= spec.duration_s:
                    break
                times.append(tt)
        t = dwell_end
        burst = not burst
    return times


def _diurnal_thin(
    spec: ScenarioSpec, times: list[float], rng: np.random.Generator
) -> list[float]:
    if spec.diurnal_amplitude <= 0 or not times:
        return times
    amp = spec.diurnal_amplitude
    period = spec.diurnal_period_s
    peak = 1.0 + amp
    kept = []
    for t in times:
        level = 1.0 + amp * math.sin(2.0 * math.pi * t / period)
        if rng.random() < level / peak:
            kept.append(t)
    return kept


def _work_scale(spec: ScenarioSpec, rng: np.random.Generator) -> float:
    mean = spec.work_scale_mean
    if spec.work_tail == "fixed":
        return mean
    if spec.work_tail == "lognormal":
        sigma = spec.work_sigma
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); pick mu so
        # the multiplier's mean equals work_scale_mean.
        mu = math.log(mean) - 0.5 * sigma * sigma
        return float(rng.lognormal(mu, sigma))
    # Pareto with shape alpha > 1, scaled to the requested mean.
    alpha = max(spec.work_sigma, 1.05)
    xm = mean * (alpha - 1.0) / alpha
    return float(xm * (1.0 + rng.pareto(alpha)))


def _phases(spec: ScenarioSpec, rng: np.random.Generator) -> list[tuple[float, float]]:
    if spec.think_fraction <= 0:
        return []
    pairs = []
    for _ in range(_PHASE_CYCLE):
        burst = float(rng.exponential(max(spec.burst_mean_s, 1e-3)))
        think = float(rng.exponential(max(spec.think_mean_s, 1e-3)))
        pairs.append((max(burst, 1e-3), max(think, 1e-3)))
    return pairs


def generate_trace(spec: ScenarioSpec, seed: int = 0) -> list[SessionPlan]:
    """Generate the full, deterministic session trace for one run."""
    rng = np.random.default_rng(_trace_seed(spec, seed))
    times = _diurnal_thin(spec, _arrival_times(spec, rng), rng)
    apps = sorted(spec.app_mix)
    weights = np.array([spec.app_mix[a] for a in apps], dtype=float)
    weights = weights / weights.sum()
    nthreads = list(spec.nthreads_choices)
    plans = []
    for t in times:
        app = apps[int(rng.choice(len(apps), p=weights))]
        plans.append(
            SessionPlan(
                arrival_s=float(t),
                app=app,
                nthreads=int(nthreads[int(rng.integers(len(nthreads)))]),
                work_scale=_work_scale(spec, rng),
                phases=_phases(spec, rng),
            )
        )
    return plans
