"""Session wrappers over the evaluation application models.

A fleet session runs one of the existing NPB/TBB/TFLite/KPN models with
its ``total_work`` scaled to the sampled session size.  Interactive
sessions additionally alternate compute *bursts* and *think* phases: a
thinking session stays alive (its process occupies a pid, its PELT
decays) but has zero CPU demand, so the scheduler treats it exactly like
a thread blocked in the kernel — this is what lets thousands of sessions
be concurrently live while only the bursting few are runnable.

The session class is derived dynamically from the base model's own class
(``FleetSessionModel`` mixed in front), so type-dispatched behaviour —
e.g. the KPN adaptivity path's ``isinstance(model, KpnApplicationModel)``
— keeps working.  Phase flipping is owned by the
:class:`~repro.scenario.driver.TraceDriver` (the model has no clock),
which makes the behaviour identical on the fixed-tick and event engines.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.scenarios import resolve_model
from repro.apps.base import ApplicationModel
from repro.sim.process import SimProcess


class FleetSessionModel:
    """Mixin gating an application model's CPU demand on an activity flag.

    Instances are created by :func:`make_session_model`; ``interactive``
    sessions have zero thread demand while ``active`` is False.
    """

    interactive: bool = False
    active: bool = True

    def thread_demand(self, process: SimProcess) -> float:
        if self.interactive and not self.active:
            return 0.0
        return super().thread_demand(process)


_session_classes: dict[type, type] = {}


def _session_class(base_cls: type) -> type:
    cls = _session_classes.get(base_cls)
    if cls is None:
        cls = type(
            f"FleetSession_{base_cls.__name__}", (FleetSessionModel, base_cls), {}
        )
        _session_classes[base_cls] = cls
    return cls


def make_session_model(
    app: str, work_scale: float, interactive: bool
) -> ApplicationModel:
    """A fresh, session-scaled instance of the named benchmark model."""
    model = replace(resolve_model(app))
    model.__class__ = _session_class(type(model))
    model.total_work = max(model.total_work * work_scale, 1e-6)
    model.interactive = interactive
    model.active = True
    return model
