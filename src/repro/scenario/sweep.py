"""Parallel sweep driver: seeds × scenarios across cores.

Fans (spec, seed, engine) jobs over a ``ProcessPoolExecutor``, streams
per-run results to a JSONL file as they complete, and returns a merged
summary.  Workers re-derive everything from the serialized spec dict and
the seed, so results are independent of worker scheduling and identical
to running each job sequentially.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Sequence

from repro.scenario.driver import run_trace
from repro.scenario.spec import ScenarioSpec


def sweep_job(job: dict) -> dict:
    """Run one sweep job (top-level so it pickles to worker processes)."""
    spec = ScenarioSpec.from_dict(job["spec"])
    return run_trace(spec, seed=int(job["seed"]), engine=job["engine"])


def run_sweep(
    specs: Sequence[ScenarioSpec],
    seeds: Iterable[int],
    engine: str = "event",
    jobs: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run every (spec, seed) pair; returns ``{"runs": [...], "summary"}``.

    ``jobs`` defaults to the machine's CPU count.  When ``out_path`` is
    given, per-run JSONL lines are appended as runs complete, then the
    file is rewritten in deterministic (spec, seed) order at the end —
    so a crashed sweep still leaves partial results on disk.
    """
    seeds = list(seeds)
    tasks = [
        {"spec": spec.to_dict(), "seed": seed, "engine": engine}
        for spec in specs
        for seed in seeds
    ]
    jobs = jobs or os.cpu_count() or 1
    results: list[dict] = []
    stream = open(out_path, "w") if out_path else None
    try:
        if jobs <= 1 or len(tasks) <= 1:
            for task in tasks:
                result = sweep_job(task)
                results.append(result)
                if stream is not None:
                    stream.write(json.dumps(result, sort_keys=True) + "\n")
                    stream.flush()
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
                futures = [pool.submit(sweep_job, task) for task in tasks]
                for future in as_completed(futures):
                    result = future.result()
                    results.append(result)
                    if stream is not None:
                        stream.write(json.dumps(result, sort_keys=True) + "\n")
                        stream.flush()
    finally:
        if stream is not None:
            stream.close()
    results.sort(key=lambda r: (r["spec"], r["seed"]))
    if out_path:
        with open(out_path, "w") as fh:
            for result in results:
                fh.write(json.dumps(result, sort_keys=True) + "\n")
    return {"runs": results, "summary": summarize(results)}


def summarize(results: list[dict]) -> dict:
    """Aggregate per-spec means and wall-clock extremes across seeds."""
    by_spec: dict[str, list[dict]] = {}
    for result in results:
        by_spec.setdefault(result["spec"], []).append(result)
    summary = {}
    for name, runs in sorted(by_spec.items()):
        n = len(runs)
        summary[name] = {
            "runs": n,
            "engine": runs[0]["engine"],
            "fleet_seconds": sum(r["duration_s"] for r in runs),
            "wall_s_total": sum(r["wall_s"] for r in runs),
            "wall_s_max": max(r["wall_s"] for r in runs),
            "mean_energy_j": sum(r["energy_j"] for r in runs) / n,
            "mean_completed": sum(r["completed"] for r in runs) / n,
            "mean_peak_live": sum(r["peak_live"] for r in runs) / n,
            "rejected": sum(r["rejected"] for r in runs),
        }
    return summary
