"""Trace replay: drives a generated session trace against a live world.

The driver is engine-portable: it does all its work from the world's
``on_event`` hook (fired every tick on the fixed-tick engine, once per
boundary on the event engine) and announces every future deadline —
the next arrival and the earliest session phase flip — through
``request_wakeup``, so the event engine never leaps past a state change.
Given the same (spec, seed), both engines replay the trace identically.
"""

from __future__ import annotations

import heapq
import time

from repro.analysis.scenarios import make_platform
from repro.core.manager import HarpManager, ManagerConfig
from repro.scenario.generator import SessionPlan, generate_trace
from repro.scenario.session import make_session_model
from repro.scenario.spec import ScenarioSpec
from repro.sim.engine import World
from repro.sim.event import EventKind, make_world
from repro.sim.process import SimProcess
from repro.sim.schedulers.cfs import CfsScheduler
from repro.sim.schedulers.eas import EasScheduler
from repro.sim.schedulers.itd import ItdScheduler
from repro.sim.schedulers.pinned import PinnedScheduler

_SCHEDULERS = {
    "cfs": CfsScheduler,
    "eas": EasScheduler,
    "itd": ItdScheduler,
    "pinned": PinnedScheduler,
}


class _LiveSession:
    __slots__ = ("plan", "process", "model", "phase_k")

    def __init__(self, plan: SessionPlan, process: SimProcess, model) -> None:
        self.plan = plan
        self.process = process
        self.model = model
        self.phase_k = 0


class TraceDriver:
    """Replays a session trace; collects per-session completion records."""

    def __init__(
        self,
        world: World,
        trace: list[SessionPlan],
        managed: bool = False,
        max_live: int | None = None,
    ):
        self.world = world
        self.trace = sorted(trace, key=lambda p: p.arrival_s)
        self.managed = managed
        self.max_live = max_live
        self._next = 0
        self._live: dict[int, _LiveSession] = {}
        # Min-heap of (deadline_s, pid) phase flips, with lazy deletion —
        # a boundary touches only the sessions whose phase actually
        # expired, never all live sessions.
        self._phase_heap: list[tuple[float, int]] = []
        self.records: list[dict] = []
        self.spawned = 0
        self.rejected = 0
        self.completed = 0
        self.peak_live = 0
        world.on_event.append(self._on_event)
        world.on_process_exit.append(self._on_exit)
        self._wake()

    # -- world hooks -----------------------------------------------------------

    def _on_event(self, world: World) -> None:
        now = world.time_s
        trace = self.trace
        while self._next < len(trace) and trace[self._next].arrival_s <= now + 1e-9:
            plan = trace[self._next]
            self._next += 1
            self._admit(plan, now)
        heap = self._phase_heap
        while heap and heap[0][0] <= now + 1e-9:
            _, pid = heapq.heappop(heap)
            session = self._live.get(pid)
            if session is None or session.process.finished:
                continue
            self._flip_phase(session, now)
        self._wake()

    def _on_exit(self, process: SimProcess) -> None:
        session = self._live.pop(process.pid, None)
        if session is None:
            return
        self.completed += 1
        plan = session.plan
        self.records.append(
            {
                "pid": process.pid,
                "app": plan.app,
                "nthreads": plan.nthreads,
                "arrival_s": plan.arrival_s,
                "start_s": process.start_time_s,
                "finish_s": process.finish_time_s,
                "lifetime_s": (process.finish_time_s or 0.0)
                - process.start_time_s,
                "cpu_s": sum(process.cpu_time_by_type.values()),
                "energy_true_j": process.energy_true_j,
            }
        )

    # -- internals -------------------------------------------------------------

    def _admit(self, plan: SessionPlan, now: float) -> None:
        if self.max_live is not None and len(self._live) >= self.max_live:
            self.rejected += 1
            return
        model = make_session_model(
            plan.app, plan.work_scale, interactive=bool(plan.phases)
        )
        process = self.world.spawn(
            model, nthreads=plan.nthreads, managed=self.managed
        )
        session = _LiveSession(plan, process, model)
        self._live[process.pid] = session
        self.spawned += 1
        if len(self._live) > self.peak_live:
            self.peak_live = len(self._live)
        if plan.phases:
            burst = plan.phases[0][0]
            heapq.heappush(self._phase_heap, (now + burst, process.pid))

    def _flip_phase(self, session: _LiveSession, now: float) -> None:
        phases = session.plan.phases
        session.phase_k += 1
        k = session.phase_k
        # Even k: bursting; odd k: thinking.  Durations cycle through the
        # precomputed (burst, think) pairs.
        pair = phases[(k // 2) % len(phases)]
        duration = pair[0] if k % 2 == 0 else pair[1]
        active = k % 2 == 0
        session.model.active = active
        # Tell the engine the session sleeps (its demand is exactly zero
        # while inactive), so the per-tick runnable scan skips it — this
        # is what keeps a tick O(bursting) instead of O(live).
        if active:
            self.world.unblock(session.process.pid)
        else:
            self.world.block(session.process.pid)
        heapq.heappush(self._phase_heap, (now + duration, session.process.pid))

    def _wake(self) -> None:
        world = self.world
        if not world.event_driven:
            return
        if self._next < len(self.trace):
            world.request_wakeup(self.trace[self._next].arrival_s, EventKind.SPAWN)
        # Prune lazily-deleted tops (sessions that completed with a phase
        # flip still pending) before announcing: a stale deadline would
        # split a leap for a session that no longer exists.  Pruning only
        # removes wakeups, never state changes, so it cannot affect
        # tick/event parity — just leap lengths.
        heap = self._phase_heap
        while heap:
            pid = heap[0][1]
            session = self._live.get(pid)
            if session is not None and not session.process.finished:
                world.request_wakeup(heap[0][0], EventKind.WAKEUP)
                break
            heapq.heappop(heap)

    # -- metrics ---------------------------------------------------------------

    def live_count(self) -> int:
        return len(self._live)

    def summary(self) -> dict:
        lifetimes = sorted(r["lifetime_s"] for r in self.records)

        def pct(q: float) -> float:
            if not lifetimes:
                return 0.0
            idx = min(len(lifetimes) - 1, int(q * (len(lifetimes) - 1)))
            return lifetimes[idx]

        return {
            "arrivals": len(self.trace),
            "spawned": self.spawned,
            "rejected": self.rejected,
            "completed": self.completed,
            "live_at_end": len(self._live),
            "peak_live": self.peak_live,
            "lifetime_p50_s": pct(0.50),
            "lifetime_p95_s": pct(0.95),
        }


# harplint: pure-wall-time -- wall_s is measurement-only; sim state advances on world.clock + explicit seed
def run_trace(
    spec: ScenarioSpec,
    seed: int = 0,
    engine: str = "event",
) -> dict:
    """Run one (spec, seed) fleet scenario end to end; returns a summary.

    The returned dict is JSON-serializable — one line of a sweep's JSONL
    output.
    """
    platform = make_platform(spec.platform)
    scheduler_cls = _SCHEDULERS.get(spec.scheduler)
    if scheduler_cls is None:
        raise ValueError(f"unknown scheduler {spec.scheduler!r}")
    world = make_world(platform, scheduler_cls(), engine=engine, seed=seed)
    manager = None
    if spec.policy == "harp":
        manager = HarpManager(world, config=ManagerConfig(epoch_window_s=0.02))
    elif spec.policy != "none":
        raise ValueError(f"unknown policy {spec.policy!r}")
    trace = generate_trace(spec, seed)
    driver = TraceDriver(
        world, trace, managed=manager is not None, max_live=spec.max_live
    )
    t0 = time.perf_counter()
    world.run_for(spec.duration_s)
    wall_s = time.perf_counter() - t0
    result = {
        "spec": spec.name,
        "seed": seed,
        "engine": engine,
        "platform": spec.platform,
        "scheduler": spec.scheduler,
        "policy": spec.policy,
        "duration_s": spec.duration_s,
        "wall_s": wall_s,
        "ticks": world.tick_index,
        "energy_j": world.total_energy_j(),
        "energy_by_type_j": dict(world.energy_by_type_j),
    }
    result.update(driver.summary())
    if manager is not None:
        result["allocation_epochs"] = manager.allocation_epochs
        result["sessions_reaped"] = manager.sessions_reaped
        manager.shutdown()
    return result
