"""DVFS-aware resource allocation (the paper's §7 outlook, item 1).

    "First, adding dynamic frequency-scaling control of the CPU would
    allow for even finer energy management."

The extension adds a frequency dimension to operating points without
touching the core machinery:

* offline DSE probes every (ERV × frequency-scale) combination; the scale
  travels in the point's knob payload (``freq_scale``), making these
  *fine-grained* operating points that share an ERV;
* :class:`CappedGovernor` wraps any base governor with per-core frequency
  caps;
* :class:`DvfsAwareManager` applies the selected point's cap to the
  allocated cores on activation (a RM-side knob — frequency is an OS
  control, not an application one) and releases the caps when the
  application exits.

Memory-bandwidth-bound applications are the natural winners: capping the
clock on their cores cuts power roughly cubically while the bandwidth
ceiling keeps throughput unchanged.
"""

from __future__ import annotations

from typing import Callable

from repro.core.manager import AppSession, HarpManager
from repro.core.operating_point import OperatingPoint
from repro.core.resource_vector import ErvLayout, ExtendedResourceVector
from repro.dse.explorer import (
    DseResult,
    enumerate_erv_grid,
    measure_operating_point,
)
from repro.ipc.messages import ActivateOperatingPoint
from repro.platform.dvfs import Governor
from repro.platform.topology import Core, Platform

FREQ_SCALE_KNOB = "freq_scale"


class CappedGovernor(Governor):
    """Wraps a governor with per-core maximum-frequency caps."""

    name = "capped"

    def __init__(self, base: Governor):
        super().__init__(base.platform)
        self.base = base
        self._caps: dict[int, float] = {}

    def set_cap(self, core_id: int, scale: float) -> None:
        """Cap a core at ``scale`` × its maximum frequency (0 < scale ≤ 1)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if scale >= 1.0:
            self._caps.pop(core_id, None)
        else:
            self._caps[core_id] = scale

    def clear_caps(self, core_ids: list[int] | None = None) -> None:
        """Remove caps from the given cores (all cores when None)."""
        if core_ids is None:
            self._caps.clear()
            return
        for core_id in core_ids:
            self._caps.pop(core_id, None)

    def cap_of(self, core_id: int) -> float:
        return self._caps.get(core_id, 1.0)

    def select_freq(self, core: Core, utilization: float) -> float:
        freq = self.base.select_freq(core, utilization)
        scale = self._caps.get(core.core_id)
        if scale is not None:
            freq = min(freq, scale * core.core_type.max_freq_mhz)
            freq = max(freq, float(core.core_type.min_freq_mhz))
        return freq


def explore_application_dvfs(
    model_factory: Callable,
    platform: Platform,
    grid: list[ExtendedResourceVector] | None = None,
    freq_scales: tuple[float, ...] = (0.7, 0.85, 1.0),
    probe_s: float = 0.6,
    governor: str = "performance",
    seed: int = 0,
) -> DseResult:
    """Offline DSE over the (configuration × frequency) space.

    Each probe runs with the allocation's cores capped at the candidate
    scale; the resulting points carry the scale in their knob payload.
    """
    layout = ErvLayout(platform)
    if grid is None:
        grid = enumerate_erv_grid(layout)
    model = model_factory()
    result = DseResult(app_name=model.name)
    for erv in grid:
        for scale in freq_scales:
            mp = measure_operating_point(
                model_factory, platform, erv, probe_s=probe_s,
                governor=governor, seed=seed, freq_scale=scale,
            )
            result.points.append(mp)
    return result


class DvfsAwareManager(HarpManager):
    """HARP RM that also selects per-allocation frequency caps.

    Requires the world's governor to be a :class:`CappedGovernor`; the
    manager installs the selected point's cap on the application's cores
    at activation time and lifts it on exit.
    """

    def __init__(self, world, *args, **kwargs):
        if not isinstance(world.governor, CappedGovernor):
            raise TypeError(
                "DvfsAwareManager requires the world to run a CappedGovernor"
            )
        super().__init__(world, *args, **kwargs)
        self._capped_cores: dict[int, list[int]] = {}

    def _push_activation(
        self, session: AppSession, message: ActivateOperatingPoint
    ) -> None:
        governor: CappedGovernor = self.world.governor
        previous = self._capped_cores.pop(session.pid, [])
        governor.clear_caps(previous)
        scale = float(message.knobs.get(FREQ_SCALE_KNOB, 1.0))
        core_of_hw = {
            t.thread_id: t.core_id for t in self.world.platform.hw_threads
        }
        cores = sorted({core_of_hw[hw] for hw in message.hw_threads})
        if scale < 1.0:
            for core_id in cores:
                governor.set_cap(core_id, scale)
            self._capped_cores[session.pid] = cores
        super()._push_activation(session, message)

    def _on_process_exit(self, process) -> None:
        governor: CappedGovernor = self.world.governor
        governor.clear_caps(self._capped_cores.pop(process.pid, []))
        super()._on_process_exit(process)
