"""Extensions beyond the paper's evaluated system (§7 outlook).

The paper names three future directions; two are implemented here as
opt-in extensions that reuse the unchanged core machinery:

* :mod:`repro.ext.dvfs` — frequency-scaling control integrated into the
  allocation: operating points gain a per-allocation frequency cap, so
  the RM can trade clock speed for energy on top of core placement.
* :mod:`repro.ext.phases` — detection of distinct execution stages from
  the monitoring stream, re-triggering exploration when an application's
  behaviour shifts (no explicit application input required).
"""

from repro.ext.dvfs import (
    CappedGovernor,
    DvfsAwareManager,
    FREQ_SCALE_KNOB,
    explore_application_dvfs,
)
from repro.ext.phases import PhaseChangeDetector, PhasedApplicationModel

__all__ = [
    "CappedGovernor",
    "DvfsAwareManager",
    "FREQ_SCALE_KNOB",
    "explore_application_dvfs",
    "PhaseChangeDetector",
    "PhasedApplicationModel",
]
