"""Execution-stage detection (the paper's §7 outlook, item 2).

    "Many applications exhibit distinct performance-energy characteristics
    across different execution stages. [...] a generic solution would
    require automatically detecting these stages without explicit
    application input."

Two pieces:

* :class:`PhasedApplicationModel` — a workload whose behaviour switches
  between phases as work progresses (e.g. an I/O-ish setup phase, a
  compute phase, a memory-bound reduction), used to exercise detection;
* :class:`PhaseChangeDetector` — a CUSUM-style detector over the
  monitoring stream: it tracks a slow baseline of the (utility, power)
  samples for the *current configuration* and flags a stage transition
  when the relative deviation stays beyond a threshold for several
  consecutive samples;
* :class:`PhaseAwareManager` — on detection, archives the application's
  operating-point table and restarts exploration for the new stage, so
  each stage gets its own table (stage tables are cached and reused when a
  known behaviour signature returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ApplicationModel
from repro.core.manager import AppSession, HarpManager
from repro.core.monitor import MonitorSample
from repro.core.operating_point import OperatingPointTable
from repro.sim.engine import AppPerf, ThreadSlot
from repro.sim.process import SimProcess


@dataclass(frozen=True)
class Phase:
    """One execution stage of a phased application.

    ``work_fraction`` values across a model's phases must sum to 1; the
    remaining attributes override the model's behaviour while the phase is
    active.
    """

    work_fraction: float
    serial_fraction: float = 0.01
    mem_bw_cap: float | None = None
    ips_per_work: float = 1.0e9
    power_intensity: float = 1.0


@dataclass
class PhasedApplicationModel(ApplicationModel):
    """An application whose behaviour changes across execution stages."""

    phases: list[Phase] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.phases:
            raise ValueError("phased application needs at least one phase")
        total = sum(p.work_fraction for p in self.phases)
        if abs(total - 1.0) > 1e-6:
            raise ValueError("phase work fractions must sum to 1")

    def phase_at(self, work_done: float) -> Phase:
        """The phase active at a given progress position."""
        boundary = 0.0
        for phase in self.phases:
            boundary += phase.work_fraction * self.total_work
            if work_done < boundary - 1e-12:
                return phase
        return self.phases[-1]

    def steady_work_horizon(self, process: SimProcess) -> float:
        """Work left inside the current phase (behaviour flips past it).

        Mirrors :meth:`phase_at`'s boundary arithmetic, including its
        1e-12 tolerance: the returned budget is exactly the amount of
        progress after which ``phase_at`` would pick a different phase, so
        the event engine's busy leaps always stop short of a phase flip.
        The last phase extends to the end of the work, where the
        completion horizon takes over.
        """
        boundary = 0.0
        for phase in self.phases:
            boundary += phase.work_fraction * self.total_work
            if process.work_done < boundary - 1e-12:
                return boundary - 1e-12 - process.work_done
        return max(self.total_work - process.work_done, 0.0)

    def perf(self, slots: list[ThreadSlot], process: SimProcess) -> AppPerf:
        phase = self.phase_at(process.work_done)
        # Temporarily adopt the phase's behaviour; ApplicationModel.perf
        # reads these attributes directly.
        saved = (
            self.serial_fraction, self.mem_bw_cap,
            self.ips_per_work, self.power_intensity,
        )
        try:
            self.serial_fraction = phase.serial_fraction
            self.mem_bw_cap = phase.mem_bw_cap
            self.ips_per_work = phase.ips_per_work
            self.power_intensity = phase.power_intensity
            return super().perf(slots, process)
        finally:
            (
                self.serial_fraction, self.mem_bw_cap,
                self.ips_per_work, self.power_intensity,
            ) = saved


class PhaseChangeDetector:
    """Relative-shift detector over per-configuration measurement streams.

    A sample deviates when either utility or power differs from the slow
    baseline by more than ``threshold`` (relative).  ``patience``
    consecutive deviations — under an unchanged configuration — signal a
    stage transition.  Reconfigurations reset the baseline, since a new
    allocation legitimately changes both metrics.
    """

    def __init__(
        self,
        threshold: float = 0.35,
        patience: int = 4,
        baseline_alpha: float = 0.02,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.threshold = threshold
        self.patience = patience
        self.baseline_alpha = baseline_alpha
        self._baseline_u: float | None = None
        self._baseline_p: float | None = None
        self._deviations = 0
        self._config_key = None
        self._warmup = 0

    def reset(self, config_key=None) -> None:
        """Forget the baseline (call after a reconfiguration)."""
        self._baseline_u = None
        self._baseline_p = None
        self._deviations = 0
        self._config_key = config_key
        self._warmup = 0

    def observe(self, config_key, utility: float, power: float) -> bool:
        """Feed one sample; True when a stage transition is detected."""
        if config_key != self._config_key:
            self.reset(config_key)
        if self._baseline_u is None:
            self._baseline_u = utility
            self._baseline_p = power
            return False
        self._warmup += 1
        dev_u = abs(utility - self._baseline_u) / max(abs(self._baseline_u), 1e-12)
        dev_p = abs(power - self._baseline_p) / max(abs(self._baseline_p), 1e-12)
        deviating = max(dev_u, dev_p) > self.threshold
        if deviating and self._warmup > self.patience:
            self._deviations += 1
        else:
            self._deviations = 0
            # Only track the baseline while behaviour is steady.
            a = self.baseline_alpha
            self._baseline_u += a * (utility - self._baseline_u)
            self._baseline_p += a * (power - self._baseline_p)
        if self._deviations >= self.patience:
            self.reset(config_key)
            return True
        return False


class PhaseAwareManager(HarpManager):
    """HARP RM with automatic stage detection and per-stage tables."""

    def __init__(self, *args, detector_factory=PhaseChangeDetector, **kwargs):
        super().__init__(*args, **kwargs)
        self._detector_factory = detector_factory
        self._detectors: dict[int, PhaseChangeDetector] = {}
        self._stage_index: dict[str, int] = {}
        self.phase_changes: dict[str, int] = {}

    def _on_measurement(self, session: AppSession, sample: MonitorSample) -> None:
        detector = self._detectors.get(session.pid)
        if detector is None:
            detector = self._detector_factory()
            self._detectors[session.pid] = detector
        changed = detector.observe(
            session.current_erv, sample.utility, sample.power_w
        )
        if not changed:
            return
        app = session.table.app_name
        self.phase_changes[app] = self.phase_changes.get(app, 0) + 1
        stage = self._stage_index.get(app, 0) + 1
        self._stage_index[app] = stage
        # Per-stage tables: resume the stage's table if this behaviour was
        # seen before, otherwise start a fresh exploration.
        key = f"{app}#stage{stage}"
        table = self.table_store.get(key)
        if table is None:
            table = OperatingPointTable(app, self.layout)
            self.table_store[key] = table
        session.table = table
        session.samples_at_current = 0
        session.measurements_total = 0
        self.reallocate()

    def _on_process_exit(self, process) -> None:
        self._detectors.pop(process.pid, None)
        super()._on_process_exit(process)
