"""libharp: the application-side half of HARP (§4.1).

Registers applications with the RM, receives allocation pushes, adapts the
application (affinity, parallelization degree, custom knobs), and answers
utility polls.  Adapters implement the three adaptivity classes of the
paper — static, scalable, custom — and the hook layer reproduces how the
real library intercepts OpenMP/TBB runtime internals.
"""

from repro.libharp.adaptivity import (
    AdaptationMode,
    ApplicationAdapter,
    SimProcessAdapter,
)
from repro.libharp.client import LibHarpClient
from repro.libharp.hooks import RuntimeHooks, detect_runtime

__all__ = [
    "AdaptationMode",
    "ApplicationAdapter",
    "SimProcessAdapter",
    "LibHarpClient",
    "RuntimeHooks",
    "detect_runtime",
]
