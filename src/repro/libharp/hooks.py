"""Runtime-library hooks (§4.1.3–4.1.4).

The real libharp adapts applications by intercepting runtime internals:
``pthread_*`` for static applications, ``GOMP_parallel`` for OpenMP,
TBB's market/arena sizing for Intel TBB, and a wrapper library for
TensorFlow Lite.  In the simulation the interception point is the
process's ``nthreads``; this module decides *what* the hook would set it
to for each runtime, keeping the runtime-specific rules in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.openmp import OmpEnvironment, resolve_team_size


@dataclass(frozen=True)
class RuntimeHooks:
    """Resolved hook behaviour for one application's runtime library."""

    runtime: str  # "openmp" | "tbb" | "tensorflow" | "kpn" | "pthread"
    malleable: bool

    def resolve_degree(self, user_threads: int, harp_degree: int | None) -> int:
        """Worker-thread count after the hook applies a HARP degree.

        Non-malleable runtimes (plain pthreads) cannot change their thread
        count — the OS simply time-shares the allocated cores among the
        user's threads, the static-application drawback of §4.1.3.
        """
        if not self.malleable or harp_degree is None:
            return user_threads
        if self.runtime == "openmp":
            env = OmpEnvironment(omp_num_threads=user_threads, nproc=user_threads)
            return resolve_team_size(env, harp_degree)
        # TBB's task arena and the TensorFlow wrapper both honour the
        # HARP-provided concurrency limit directly.
        return max(1, harp_degree)


_RUNTIMES = {
    "openmp": RuntimeHooks("openmp", malleable=True),
    "tbb": RuntimeHooks("tbb", malleable=True),
    "tensorflow": RuntimeHooks("tensorflow", malleable=True),
    "kpn": RuntimeHooks("kpn", malleable=True),
    "pthread": RuntimeHooks("pthread", malleable=False),
    None: RuntimeHooks("pthread", malleable=False),
}


def detect_runtime(runtime_lib: str | None) -> RuntimeHooks:
    """Automatic runtime detection, as libharp does at library load."""
    hooks = _RUNTIMES.get(runtime_lib)
    if hooks is None:
        # Unknown runtimes degrade to the static-application path.
        return _RUNTIMES["pthread"]
    return hooks
