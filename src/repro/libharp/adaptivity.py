"""Application adapters: how libharp applies an allocation (§4.1.3).

``ApplicationAdapter`` is the interface the libharp client drives;
``SimProcessAdapter`` implements it against a simulated process:

* **static** applications only get their affinity mask updated — their
  thread count is fixed, so over-allocation leads to time-sharing;
* **scalable** applications additionally have their parallelization degree
  matched to the hardware threads of the ERV via the runtime hooks;
* **custom** applications receive the opaque knob payload and invoke any
  registered reconfiguration callbacks (the KPN replica knob, algorithm
  switches, ...).

``AdaptationMode`` reproduces the paper's ablation variants: FULL is
normal operation, AFFINITY_ONLY is *HARP (No Scaling)* (allocations are
enforced but the application does not adapt), and IGNORE is the §6.6
overhead setup where activation messages are dropped entirely and the
application remains scheduled like the baseline.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable

from repro.apps.base import AdaptivityType
from repro.apps.kpn import KpnApplicationModel
from repro.libharp.hooks import detect_runtime
from repro.sim.process import SimProcess


class AdaptationMode(enum.Enum):
    """What the adapter does with activation messages."""

    FULL = "full"
    AFFINITY_ONLY = "affinity-only"
    IGNORE = "ignore"


KnobCallback = Callable[[dict, list[int]], None]


class ApplicationAdapter(ABC):
    """The libharp-internal surface that applies RM decisions."""

    @property
    @abstractmethod
    def pid(self) -> int:
        ...

    @property
    @abstractmethod
    def app_name(self) -> str:
        ...

    @property
    @abstractmethod
    def adaptivity(self) -> AdaptivityType:
        ...

    @property
    @abstractmethod
    def provides_utility(self) -> bool:
        ...

    @abstractmethod
    def apply_allocation(
        self, degree: int, knobs: dict, hw_threads: list[int]
    ) -> None:
        """Reconfigure the application for a new allocation."""

    @abstractmethod
    def current_utility(self) -> float | None:
        """Application-specific utility (None = not supported)."""


class SimProcessAdapter(ApplicationAdapter):
    """Adapter bound to a simulated process."""

    def __init__(
        self,
        process: SimProcess,
        mode: AdaptationMode = AdaptationMode.FULL,
        clock: Callable[[], float] | None = None,
    ):
        self._process = process
        self._mode = mode
        self._hooks = detect_runtime(process.model.runtime_lib)
        self._user_threads = process.nthreads
        self._custom_callbacks: list[KnobCallback] = []
        self._clock = clock
        self._last_work = 0.0
        self._last_time: float | None = None

    # -- metadata -----------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self._process.pid

    @property
    def app_name(self) -> str:
        return self._process.model.name

    @property
    def adaptivity(self) -> AdaptivityType:
        return self._process.model.adaptivity

    @property
    def provides_utility(self) -> bool:
        return self._process.model.provides_utility

    @property
    def process(self) -> SimProcess:
        return self._process

    def register_callback(self, callback: KnobCallback) -> None:
        """Custom applications register reconfiguration callbacks (§4.1.4)."""
        self._custom_callbacks.append(callback)

    # -- adaptation ------------------------------------------------------------------

    def apply_allocation(
        self, degree: int, knobs: dict, hw_threads: list[int]
    ) -> None:
        if self._mode is AdaptationMode.IGNORE:
            return
        if hw_threads:
            self._process.set_affinity(frozenset(hw_threads))
        else:
            self._process.set_affinity(None)
        if self._mode is AdaptationMode.AFFINITY_ONLY:
            return

        model = self._process.model
        if self.adaptivity is AdaptivityType.STATIC:
            return
        if isinstance(model, KpnApplicationModel):
            payload = knobs or model.replicas_knob_for(degree)
            self._process.knobs.update(payload)
            self._process.set_nthreads(model.topology_size(self._process))
        elif self.adaptivity is AdaptivityType.CUSTOM and self._custom_callbacks:
            for callback in self._custom_callbacks:
                callback(knobs, hw_threads)
            self._process.set_nthreads(
                self._hooks.resolve_degree(self._user_threads, degree)
            )
        else:
            new_threads = self._hooks.resolve_degree(self._user_threads, degree)
            self._process.set_nthreads(new_threads)
            if knobs:
                self._process.knobs.update(knobs)

    # -- utility feedback ---------------------------------------------------------------

    def current_utility(self) -> float | None:
        """Application-specific throughput (work/s) since the last poll.

        Returns None when the application does not expose its own metric
        (the RM then falls back to IPS, §5.1) or when no interval has
        elapsed yet.
        """
        if not self.provides_utility or self._clock is None:
            return None
        now = self._clock()
        now_work = self._process.work_done
        utility = None
        if self._last_time is not None and now > self._last_time:
            utility = max(0.0, (now_work - self._last_work) / (now - self._last_time))
        self._last_time = now
        self._last_work = now_work
        return utility
