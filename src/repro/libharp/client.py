"""The libharp client: the application's end of the Fig. 3 control flow.

1. On startup, register with the RM (PID, granularity, adaptivity type,
   utility capability).
2. Send operating points from the application description file, if any.
3. Handle activation pushes by applying the allocation through the
   application adapter.
4. Answer utility polls with the application-specific metric.

Requests are hardened per docs/robustness.md: every request carries an
explicit timeout and runs under a bounded retry loop with exponential
backoff.  After a transport failure the client reconnects and — when it
had already completed the handshake — transparently re-registers with the
RM (sessions are keyed by PID, so a restarted RM simply sees the
application again).  ``sleeper`` is injectable and defaults to no sleep,
keeping the deterministic in-process simulation free of wall-clock
dependencies; real socket deployments pass ``time.sleep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ipc.client import Transport
from repro.ipc.messages import (
    Ack,
    ActivateOperatingPoint,
    DeregisterRequest,
    ErrorReply,
    Message,
    OperatingPointsMessage,
    RegisterReply,
    RegisterRequest,
    UtilityReply,
    UtilityRequest,
)
from repro.ipc.protocol import ProtocolError
from repro.libharp.adaptivity import ApplicationAdapter
from repro.obs import OBS


class RegistrationError(RuntimeError):
    """The RM rejected or failed the registration handshake."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration for libharp requests.

    ``jitter`` spreads each backoff delay uniformly over
    ``[delay * (1 - jitter), delay]`` to de-synchronize reconnect storms,
    but from a *seeded* generator: the jitter sequence is a pure function
    of ``seed``, so a retried recovery path replays bit-identically
    (HL001 applies to the recovery path like to everything else).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self) -> list[float]:
        """Backoff delay before each retry (``max_attempts - 1`` entries)."""
        base = [
            self.backoff_base_s * self.backoff_factor**i
            for i in range(self.max_attempts - 1)
        ]
        if self.jitter <= 0.0 or not base:
            return base
        rng = np.random.default_rng(self.seed)
        scale = 1.0 - self.jitter * rng.random(len(base))
        return [d * float(s) for d, s in zip(base, scale)]


class LibHarpClient:
    """Drives one application's interaction with the HARP RM."""

    def __init__(
        self,
        adapter: ApplicationAdapter,
        transport: Transport,
        description_points: list[dict] | None = None,
        granularity: str = "coarse",
        retry: RetryPolicy | None = None,
        request_timeout_s: float = 5.0,
        sleeper: Callable[[float], None] | None = None,
    ):
        self.adapter = adapter
        self.transport = transport
        self.description_points = list(description_points or [])
        self.granularity = granularity
        self.retry = retry or RetryPolicy()
        self.request_timeout_s = request_timeout_s
        self._sleep = sleeper or (lambda _s: None)
        self.session_id: int | None = None
        self.activations = 0
        self.last_activation: ActivateOperatingPoint | None = None
        self.retries = 0
        self.reconnects = 0
        self.reregistrations = 0
        self._push_socket: str | None = None
        transport.set_push_handler(self._on_push)

    # -- hardened request path ------------------------------------------------------

    def _request_once(self, message: Message) -> Message:
        reply = self.transport.request(
            message, timeout=self.request_timeout_s
        )
        if isinstance(reply, ErrorReply):
            raise ProtocolError(f"RM error reply: {reply.error}")
        return reply

    def _request_with_retry(self, message: Message) -> Message:
        """Send under the retry policy; reconnect + re-register between tries."""
        delays = self.retry.delays()
        last_exc: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            try:
                return self._request_once(message)
            except (ProtocolError, OSError) as exc:
                last_exc = exc
                if OBS.enabled:
                    OBS.counter(
                        "libharp.request_failures", type=message.TYPE
                    ).inc()
                if attempt >= self.retry.max_attempts - 1:
                    break
                self.retries += 1
                if OBS.enabled:
                    OBS.counter("libharp.retries", type=message.TYPE).inc()
                self._sleep(delays[attempt])
                self.reconnects += 1
                if OBS.enabled:
                    OBS.counter("libharp.reconnects", type=message.TYPE).inc()
                try:
                    self.transport.reconnect()
                except (ProtocolError, OSError):
                    continue  # next attempt reports the persistent failure
                if self.session_id is not None and not isinstance(
                    message, RegisterRequest
                ):
                    # The RM may have restarted and lost the session: make
                    # sure it knows us again before retrying the request.
                    try:
                        self._reregister()
                    except (ProtocolError, OSError, RegistrationError):
                        continue
        assert last_exc is not None
        raise last_exc

    def _reregister(self) -> None:
        """Redo the registration handshake after a reconnect."""
        reply = self._request_once(self._registration_message())
        if not isinstance(reply, RegisterReply) or not reply.ok:
            error = getattr(reply, "error", None) or "re-registration rejected"
            raise RegistrationError(error)
        self.session_id = reply.session_id
        if self.description_points:
            self._request_once(
                OperatingPointsMessage(
                    pid=self.adapter.pid, points=self.description_points
                )
            )
        self.reregistrations += 1
        if OBS.enabled:
            OBS.counter("libharp.reregistrations").inc()

    def _registration_message(self) -> RegisterRequest:
        return RegisterRequest(
            pid=self.adapter.pid,
            app_name=self.adapter.app_name,
            granularity=self.granularity,
            adaptivity=self.adapter.adaptivity.value,
            provides_utility=self.adapter.provides_utility,
            push_socket=self._push_socket,
        )

    # -- registration (steps 1-2) --------------------------------------------------

    def register(self, push_socket: str | None = None) -> int:
        """Perform the registration handshake; returns the session id."""
        self._push_socket = push_socket
        reply = self._request_with_retry(self._registration_message())
        if not isinstance(reply, RegisterReply) or not reply.ok:
            error = getattr(reply, "error", None) or "registration rejected"
            raise RegistrationError(error)
        self.session_id = reply.session_id
        if self.description_points:
            ack = self._request_with_retry(
                OperatingPointsMessage(
                    pid=self.adapter.pid, points=self.description_points
                )
            )
            if isinstance(ack, Ack) and not ack.ok:
                raise RegistrationError(ack.error or "operating points rejected")
        return self.session_id

    def deregister(self) -> None:
        """Graceful shutdown notification."""
        self._request_with_retry(DeregisterRequest(pid=self.adapter.pid))

    # -- push handling (steps 3-4) ----------------------------------------------------

    def _on_push(self, message: Message) -> Message | None:
        if isinstance(message, ActivateOperatingPoint):
            self.adapter.apply_allocation(
                degree=message.degree,
                knobs=message.knobs,
                hw_threads=list(message.hw_threads),
            )
            self.activations += 1
            self.last_activation = message
            return Ack(ok=True)
        if isinstance(message, UtilityRequest):
            return UtilityReply(
                pid=self.adapter.pid, utility=self.adapter.current_utility()
            )
        return Ack(ok=False, error=f"unexpected push {message.TYPE!r}")
