"""The libharp client: the application's end of the Fig. 3 control flow.

1. On startup, register with the RM (PID, granularity, adaptivity type,
   utility capability).
2. Send operating points from the application description file, if any.
3. Handle activation pushes by applying the allocation through the
   application adapter.
4. Answer utility polls with the application-specific metric.
"""

from __future__ import annotations

from repro.ipc.client import Transport
from repro.ipc.messages import (
    Ack,
    ActivateOperatingPoint,
    DeregisterRequest,
    Message,
    OperatingPointsMessage,
    RegisterReply,
    RegisterRequest,
    UtilityReply,
    UtilityRequest,
)
from repro.libharp.adaptivity import ApplicationAdapter


class RegistrationError(RuntimeError):
    """The RM rejected or failed the registration handshake."""


class LibHarpClient:
    """Drives one application's interaction with the HARP RM."""

    def __init__(
        self,
        adapter: ApplicationAdapter,
        transport: Transport,
        description_points: list[dict] | None = None,
        granularity: str = "coarse",
    ):
        self.adapter = adapter
        self.transport = transport
        self.description_points = list(description_points or [])
        self.granularity = granularity
        self.session_id: int | None = None
        self.activations = 0
        self.last_activation: ActivateOperatingPoint | None = None
        transport.set_push_handler(self._on_push)

    # -- registration (steps 1-2) --------------------------------------------------

    def register(self, push_socket: str | None = None) -> int:
        """Perform the registration handshake; returns the session id."""
        reply = self.transport.request(
            RegisterRequest(
                pid=self.adapter.pid,
                app_name=self.adapter.app_name,
                granularity=self.granularity,
                adaptivity=self.adapter.adaptivity.value,
                provides_utility=self.adapter.provides_utility,
                push_socket=push_socket,
            )
        )
        if not isinstance(reply, RegisterReply) or not reply.ok:
            error = getattr(reply, "error", None) or "registration rejected"
            raise RegistrationError(error)
        self.session_id = reply.session_id
        if self.description_points:
            ack = self.transport.request(
                OperatingPointsMessage(
                    pid=self.adapter.pid, points=self.description_points
                )
            )
            if isinstance(ack, Ack) and not ack.ok:
                raise RegistrationError(ack.error or "operating points rejected")
        return self.session_id

    def deregister(self) -> None:
        """Graceful shutdown notification."""
        self.transport.request(DeregisterRequest(pid=self.adapter.pid))

    # -- push handling (steps 3-4) ----------------------------------------------------

    def _on_push(self, message: Message) -> Message | None:
        if isinstance(message, ActivateOperatingPoint):
            self.adapter.apply_allocation(
                degree=message.degree,
                knobs=message.knobs,
                hw_threads=list(message.hw_threads),
            )
            self.activations += 1
            self.last_activation = message
            return Ack(ok=True)
        if isinstance(message, UtilityRequest):
            return UtilityReply(
                pid=self.adapter.pid, utility=self.adapter.current_utility()
            )
        return Ack(ok=False, error=f"unexpected push {message.TYPE!r}")
