"""Wire framing: 4-byte big-endian length prefix + UTF-8 JSON body."""

from __future__ import annotations

import json
import socket
import struct

from repro.ipc.messages import (
    Message,
    ProtocolViolation,
    decode_message,
    encode_message,
)
from repro.obs import OBS

_HEADER = struct.Struct(">I")
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Framing-level failure (truncated stream, oversized frame, bad JSON)."""


class FrameIntegrityError(ProtocolError):
    """The byte stream is out of sync (truncated or oversized frame).

    After this the connection cannot be trusted to frame correctly again;
    the only safe reaction is to close it.
    """


class MessageDecodeError(ProtocolError):
    """A complete, well-framed body that does not decode to a message.

    The stream is still in sync — the peer may reply with an
    ``ErrorReply`` and keep serving the connection.
    """


class RequestTimeout(ProtocolError):
    """A request did not complete within its timeout."""


class FrameCodec:
    """Encodes messages to frames and decodes a byte stream back."""

    @staticmethod
    def encode(message: Message) -> bytes:
        body = json.dumps(encode_message(message)).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame too large: {len(body)} bytes")
        return _HEADER.pack(len(body)) + body

    @staticmethod
    def decode(frame: bytes) -> Message:
        try:
            data = json.loads(frame.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MessageDecodeError(f"undecodable frame: {exc}") from exc
        try:
            return decode_message(data)
        except ProtocolViolation as exc:
            raise MessageDecodeError(str(exc)) from exc


def send_message(sock: socket.socket, message: Message) -> None:
    """Write one framed message to a connected socket."""
    frame = FrameCodec.encode(message)
    if OBS.enabled:
        OBS.counter("ipc.frames", dir="send", type=message.TYPE).inc()
        OBS.counter("ipc.bytes", dir="send", type=message.TYPE).inc(len(frame))
    sock.sendall(frame)


def send_messages(sock: socket.socket, messages: list[Message]) -> None:
    """Write several framed messages with a single ``sendall``.

    Frame write batching: one epoch's worth of pushes to the same peer
    costs one syscall and at most one wakeup on the receiving side,
    instead of one per message.
    """
    if not messages:
        return
    frames = [FrameCodec.encode(message) for message in messages]
    if OBS.enabled:
        for message, frame in zip(messages, frames):
            OBS.counter("ipc.frames", dir="send", type=message.TYPE).inc()
            OBS.counter("ipc.bytes", dir="send", type=message.TYPE).inc(
                len(frame)
            )
    sock.sendall(b"".join(frames))


class StreamDecoder:
    """Incremental frame parser for non-blocking transports.

    ``feed()`` bytes as they arrive, then call ``next_message()`` until it
    returns ``None`` (incomplete frame buffered).  A frame's bytes are
    consumed *before* its body is decoded, so a ``MessageDecodeError``
    (well-framed junk) leaves the stream in sync and parsing can resume;
    a ``FrameIntegrityError`` (oversized frame) means the stream can no
    longer be trusted.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def next_message(self) -> Message | None:
        if len(self._buf) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack(bytes(self._buf[: _HEADER.size]))
        if length > MAX_FRAME_BYTES:
            raise FrameIntegrityError(f"frame too large: {length} bytes")
        end = _HEADER.size + length
        if len(self._buf) < end:
            return None
        body = bytes(self._buf[_HEADER.size : end])
        del self._buf[:end]
        message = FrameCodec.decode(body)
        if OBS.enabled:
            OBS.counter("ipc.frames", dir="recv", type=message.TYPE).inc()
            OBS.counter("ipc.bytes", dir="recv", type=message.TYPE).inc(end)
        return message


def recv_message(
    sock: socket.socket, timeout: float | None = None
) -> Message | None:
    """Read one framed message; None on clean EOF at a frame boundary.

    Args:
        timeout: when given, applied to the socket for this read via
            ``settimeout`` (``socket.timeout`` propagates to the caller).
    """
    if timeout is not None:
        sock.settimeout(timeout)
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameIntegrityError(f"frame too large: {length} bytes")
    body = _recv_exact(sock, length, allow_eof=False)
    assert body is not None
    message = FrameCodec.decode(body)
    if OBS.enabled:
        OBS.counter("ipc.frames", dir="recv", type=message.TYPE).inc()
        OBS.counter("ipc.bytes", dir="recv", type=message.TYPE).inc(
            _HEADER.size + length
        )
    return message


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            if allow_eof and remaining == count:
                # Idle at a frame boundary: let the caller poll again.
                raise
            raise FrameIntegrityError(
                "timed out mid-frame; stream out of sync"
            ) from None
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise FrameIntegrityError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
