"""Communication substrate between libharp and the HARP RM.

The paper exchanges protobuf messages over Unix sockets (§4.1.1).  We keep
the exact message types and control flow of Fig. 3 but encode frames as
length-prefixed JSON — protobuf is an encoding detail, not part of the
contribution.  Two transports implement the same protocol:

* :class:`~repro.ipc.server.HarpSocketServer` /
  :class:`~repro.ipc.client.HarpSocketClient` — real ``AF_UNIX`` sockets,
  used by the daemon example and integration tests;
* :class:`~repro.ipc.client.InProcessTransport` — a deterministic
  in-process channel used by the simulation harness.
"""

from repro.ipc.messages import (
    Ack,
    ActivateOperatingPoint,
    DeregisterRequest,
    Message,
    MigrateIn,
    MigrateOut,
    MigrateOutReply,
    NodeAdoptQuery,
    NodeAdoptReply,
    NodeDirective,
    NodeRegister,
    NodeRegisterReply,
    NodeReport,
    OperatingPointsMessage,
    RegisterReply,
    RegisterRequest,
    UtilityReply,
    UtilityRequest,
    decode_message,
    encode_message,
)
from repro.ipc.protocol import FrameCodec, ProtocolError
from repro.ipc.client import HarpSocketClient, InProcessTransport
from repro.ipc.server import HarpSocketServer

__all__ = [
    "Ack",
    "ActivateOperatingPoint",
    "DeregisterRequest",
    "Message",
    "MigrateIn",
    "MigrateOut",
    "MigrateOutReply",
    "NodeAdoptQuery",
    "NodeAdoptReply",
    "NodeDirective",
    "NodeRegister",
    "NodeRegisterReply",
    "NodeReport",
    "OperatingPointsMessage",
    "RegisterReply",
    "RegisterRequest",
    "UtilityReply",
    "UtilityRequest",
    "decode_message",
    "encode_message",
    "FrameCodec",
    "ProtocolError",
    "HarpSocketClient",
    "HarpSocketServer",
    "InProcessTransport",
]
