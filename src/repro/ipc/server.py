"""Unix-socket endpoint of the HARP resource manager.

A threaded ``AF_UNIX`` server: each application connection is served by a
dedicated thread that decodes frames and dispatches them to a handler
callback, which returns the reply message.  Push messages (allocation
activations, utility polls) are delivered over the application's dedicated
push socket, exactly as described in §4.1.1.

Hardening contract (docs/robustness.md): a misbehaving peer must never
take the RM down.  A well-framed but undecodable message (garbage JSON,
unknown TYPE, malformed fields) gets an ``ErrorReply`` and the connection
keeps serving; a framing-integrity failure (truncated stream, oversized
frame) gets a best-effort ``ErrorReply(recoverable=False)`` and the
connection is closed, because the byte stream can no longer be trusted.
Handler exceptions become error acks.  ``stop()`` is idempotent and
closes live connections so worker threads exit promptly; threads that
still fail to join within the timeout are counted in the
``ipc.thread_join_timeouts`` obs counter rather than silently leaked.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from typing import Callable

from repro.ipc.messages import Ack, ErrorReply, Message
from repro.ipc.protocol import (
    FrameIntegrityError,
    MessageDecodeError,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.obs import OBS

Handler = Callable[[Message], Message | None]

#: Idle-poll granularity for blocking reads: bounds how long a worker
#: thread can outlive ``stop()`` while parked in ``recv``.
_POLL_TIMEOUT_S = 0.2


class HarpSocketServer:
    """The RM's request socket plus per-application push connections."""

    def __init__(
        self,
        socket_path: str,
        handler: Handler,
        join_timeout_s: float = 2.0,
    ):
        self.socket_path = socket_path
        self.handler = handler
        self.join_timeout_s = join_timeout_s
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._push_sockets: dict[int, socket.socket] = {}
        self._push_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and accept in a background thread."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(32)
        self._listener = listener
        self._stopping.clear()
        self._stopped = False
        accept_thread = threading.Thread(
            target=self._accept_loop, name="harp-rm-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)

    def stop(self) -> None:
        """Shut down the listener and all connections; safe to call twice."""
        if self._stopped:
            return
        self._stopped = True
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.shutdown(socket.SHUT_RDWR)
            self._listener.close()
            self._listener = None
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        with self._push_lock:
            for sock in self._push_sockets.values():
                with contextlib.suppress(OSError):
                    sock.close()
            self._push_sockets.clear()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        for thread in self._threads:
            thread.join(timeout=self.join_timeout_s)
            if thread.is_alive() and OBS.enabled:
                OBS.counter(
                    "ipc.thread_join_timeouts", role="server"
                ).inc()
        self._threads.clear()

    def __enter__(self) -> "HarpSocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- push channel ----------------------------------------------------------------

    def open_push_channel(self, pid: int, push_socket_path: str) -> None:
        """Connect to an application's dedicated push socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(push_socket_path)
        with self._push_lock:
            old = self._push_sockets.pop(pid, None)
            if old is not None:
                with contextlib.suppress(OSError):
                    old.close()
            self._push_sockets[pid] = sock

    def push(self, pid: int, message: Message) -> bool:
        """Send a push message to an application; False if unreachable."""
        with self._push_lock:
            sock = self._push_sockets.get(pid)
        if sock is None:
            return False
        try:
            send_message(sock, message)
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="true"
                ).inc()
            return True
        except OSError:
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="false"
                ).inc()
            self.close_push_channel(pid)
            return False

    def close_push_channel(self, pid: int) -> None:
        with self._push_lock:
            sock = self._push_sockets.pop(pid, None)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    # -- internals ----------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            # Reap finished workers so the thread list stays bounded on
            # long-lived servers with much connection churn.
            self._threads = [t for t in self._threads if t.is_alive()]
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="harp-rm-conn",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(conn)
        try:
            with conn:
                conn.settimeout(_POLL_TIMEOUT_S)
                self._serve_frames(conn)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    def _serve_frames(self, conn: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                message = recv_message(conn)
            except socket.timeout:
                continue  # idle poll: re-check the stop flag
            except MessageDecodeError as exc:
                # Well-framed junk: the stream is still in sync, so tell
                # the peer what happened and keep serving.
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="decode").inc()
                try:
                    send_message(
                        conn, ErrorReply(error=str(exc), recoverable=True)
                    )
                except OSError:
                    return
                continue
            except (FrameIntegrityError, ProtocolError, OSError) as exc:
                # Framing integrity lost: best-effort error, then close.
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="framing").inc()
                with contextlib.suppress(OSError, ProtocolError):
                    send_message(
                        conn, ErrorReply(error=str(exc), recoverable=False)
                    )
                return
            if message is None:
                return
            obs_on = OBS.enabled
            t0 = OBS.walltime() if obs_on else 0.0
            try:
                reply = self.handler(message)
            except Exception as exc:  # handler bug must not kill the RM
                reply = Ack(ok=False, error=f"handler error: {exc}")
            if obs_on:
                OBS.counter("ipc.handled", type=message.TYPE).inc()
                OBS.histogram(
                    "ipc.handler_seconds", type=message.TYPE
                ).observe(OBS.walltime() - t0)
            if reply is not None:
                try:
                    send_message(conn, reply)
                except OSError:
                    return
