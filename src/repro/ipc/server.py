"""Unix-socket endpoint of the HARP resource manager.

An ``AF_UNIX`` server with two switchable serving modes:

* ``threaded`` (default) — each application connection is served by a
  dedicated thread that decodes frames and dispatches them to a handler
  callback, which returns the reply message.
* ``selector`` — a single event-loop thread multiplexes every connection
  through :mod:`selectors` with non-blocking sockets, an incremental
  frame decoder per connection, and write buffering.  At hundreds of
  clients this avoids the per-connection thread cost and the
  thundering-herd of idle poll wakeups.

Push messages (allocation activations, utility polls) are delivered over
the application's dedicated push socket, exactly as described in §4.1.1.
``push_batch()`` coalesces one epoch's pushes to a client into a single
wire flush.

Hardening contract (docs/robustness.md): a misbehaving peer must never
take the RM down.  A well-framed but undecodable message (garbage JSON,
unknown TYPE, malformed fields) gets an ``ErrorReply`` and the connection
keeps serving; a framing-integrity failure (truncated stream, oversized
frame) gets a best-effort ``ErrorReply(recoverable=False)`` and the
connection is closed, because the byte stream can no longer be trusted.
Handler exceptions become error acks.  ``stop()`` is idempotent and
closes live connections so worker threads exit promptly; threads that
still fail to join within the timeout are counted in the
``ipc.thread_join_timeouts`` obs counter rather than silently leaked.
"""

from __future__ import annotations

import contextlib
import os
import selectors
import socket
import threading
from typing import Callable

from repro.ipc.messages import Ack, ErrorReply, Message
from repro.ipc.protocol import (
    FrameCodec,
    FrameIntegrityError,
    MessageDecodeError,
    ProtocolError,
    StreamDecoder,
    recv_message,
    send_message,
    send_messages,
)
from repro.obs import OBS

Handler = Callable[[Message], Message | None]

#: Idle-poll granularity for blocking reads: bounds how long a worker
#: thread can outlive ``stop()`` while parked in ``recv``.
_POLL_TIMEOUT_S = 0.2


class _SelectorConn:
    """Per-connection state for the selector serving mode."""

    __slots__ = ("sock", "decoder", "outbuf", "closing")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = StreamDecoder()
        self.outbuf = bytearray()
        #: Close once the out-buffer drains (after a non-recoverable error).
        self.closing = False


class HarpSocketServer:
    """The RM's request socket plus per-application push connections."""

    def __init__(
        self,
        socket_path: str,
        handler: Handler,
        join_timeout_s: float = 2.0,
        mode: str = "threaded",
    ):
        if mode not in ("threaded", "selector"):
            raise ValueError(f"unknown server mode: {mode!r}")
        self.socket_path = socket_path
        self.handler = handler
        self.join_timeout_s = join_timeout_s
        self.mode = mode
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._push_sockets: dict[int, socket.socket] = {}
        self._push_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and accept in a background thread."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(32)
        self._listener = listener
        self._stopping.clear()
        self._stopped = False
        if self.mode == "selector":
            loop_thread = threading.Thread(
                target=self._selector_loop, name="harp-rm-selector", daemon=True
            )
            loop_thread.start()
            self._threads.append(loop_thread)
            return
        accept_thread = threading.Thread(
            target=self._accept_loop, name="harp-rm-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)

    def stop(self) -> None:
        """Shut down the listener and all connections; safe to call twice."""
        if self._stopped:
            return
        self._stopped = True
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.shutdown(socket.SHUT_RDWR)
            self._listener.close()
            self._listener = None
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        # Detach the push sockets under the lock, close them outside it:
        # close() can block flushing unsent pushes, and the epoch loop's
        # push() path contends on this lock.
        with self._push_lock:
            push_socks = list(self._push_sockets.values())
            self._push_sockets.clear()
        for sock in push_socks:
            with contextlib.suppress(OSError):
                sock.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        for thread in self._threads:
            thread.join(timeout=self.join_timeout_s)
            if thread.is_alive() and OBS.enabled:
                OBS.counter(
                    "ipc.thread_join_timeouts", role="server"
                ).inc()
        self._threads.clear()

    def __enter__(self) -> "HarpSocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- push channel ----------------------------------------------------------------

    def open_push_channel(self, pid: int, push_socket_path: str) -> None:
        """Connect to an application's dedicated push socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(push_socket_path)
        with self._push_lock:
            old = self._push_sockets.pop(pid, None)
            self._push_sockets[pid] = sock
        # Close the displaced socket outside the lock — close() can
        # block, and push() serializes on _push_lock.
        if old is not None:
            with contextlib.suppress(OSError):
                old.close()

    def push(self, pid: int, message: Message) -> bool:
        """Send a push message to an application; False if unreachable."""
        with self._push_lock:
            sock = self._push_sockets.get(pid)
        if sock is None:
            return False
        try:
            send_message(sock, message)
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="true"
                ).inc()
            return True
        except OSError:
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="false"
                ).inc()
            self.close_push_channel(pid)
            return False

    def push_batch(self, pid: int, messages: list[Message]) -> bool:
        """Deliver several pushes to one application in one wire flush.

        The epoch model produces a burst of pushes per client (activation
        plus any utility polls); batching them keeps the syscall and
        wakeup count per epoch at one per client instead of one per
        message.  False if the client is unreachable.
        """
        if not messages:
            return True
        with self._push_lock:
            sock = self._push_sockets.get(pid)
        if sock is None:
            return False
        try:
            send_messages(sock, messages)
            if OBS.enabled:
                OBS.counter("ipc.push_batches").inc()
                for message in messages:
                    OBS.counter(
                        "ipc.pushes", type=message.TYPE, delivered="true"
                    ).inc()
            return True
        except OSError:
            if OBS.enabled:
                for message in messages:
                    OBS.counter(
                        "ipc.pushes", type=message.TYPE, delivered="false"
                    ).inc()
            self.close_push_channel(pid)
            return False

    def close_push_channel(self, pid: int) -> None:
        with self._push_lock:
            sock = self._push_sockets.pop(pid, None)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    # -- internals ----------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            # Reap finished workers so the thread list stays bounded on
            # long-lived servers with much connection churn.
            self._threads = [t for t in self._threads if t.is_alive()]
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="harp-rm-conn",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(conn)
        try:
            with conn:
                conn.settimeout(_POLL_TIMEOUT_S)
                self._serve_frames(conn)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    def _serve_frames(self, conn: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                message = recv_message(conn)
            except socket.timeout:
                continue  # idle poll: re-check the stop flag
            except MessageDecodeError as exc:
                # Well-framed junk: the stream is still in sync, so tell
                # the peer what happened and keep serving.
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="decode").inc()
                try:
                    send_message(
                        conn, ErrorReply(error=str(exc), recoverable=True)
                    )
                except OSError:
                    return
                continue
            except (FrameIntegrityError, ProtocolError, OSError) as exc:
                # Framing integrity lost: best-effort error, then close.
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="framing").inc()
                with contextlib.suppress(OSError, ProtocolError):
                    send_message(
                        conn, ErrorReply(error=str(exc), recoverable=False)
                    )
                return
            if message is None:
                return
            reply = self._dispatch(message)
            if reply is not None:
                try:
                    send_message(conn, reply)
                except OSError:
                    return

    def _dispatch(self, message: Message) -> Message | None:
        obs_on = OBS.enabled
        t0 = OBS.walltime() if obs_on else 0.0
        try:
            reply = self.handler(message)
        except Exception as exc:  # handler bug must not kill the RM
            reply = Ack(ok=False, error=f"handler error: {exc}")
        if obs_on:
            OBS.counter("ipc.handled", type=message.TYPE).inc()
            OBS.histogram(
                "ipc.handler_seconds", type=message.TYPE
            ).observe(OBS.walltime() - t0)
        return reply

    # -- selector mode ------------------------------------------------------------------

    def _selector_loop(self) -> None:
        """Single event-loop thread multiplexing every connection."""
        listener = self._listener
        assert listener is not None
        sel = selectors.DefaultSelector()
        try:
            listener.settimeout(0.0)
            sel.register(listener, selectors.EVENT_READ)
        except OSError:
            # stop() already closed the listener before the loop started.
            sel.close()
            return
        states: dict[socket.socket, _SelectorConn] = {}
        try:
            while not self._stopping.is_set():
                try:
                    ready = sel.select(timeout=_POLL_TIMEOUT_S)
                except OSError:
                    return
                for key, events in ready:
                    if key.fileobj is listener:
                        self._selector_accept(sel, states)
                        continue
                    state = states.get(key.fileobj)
                    if state is None:
                        continue
                    if events & selectors.EVENT_WRITE:
                        self._selector_flush(sel, states, state)
                    if (
                        events & selectors.EVENT_READ
                        and key.fileobj in states
                    ):
                        self._selector_read(sel, states, state)
        finally:
            for state in list(states.values()):
                self._selector_drop(sel, states, state)
            sel.close()

    def _selector_accept(
        self,
        sel: selectors.BaseSelector,
        states: dict[socket.socket, _SelectorConn],
    ) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.settimeout(0.0)
            state = _SelectorConn(conn)
            states[conn] = state
            with self._conn_lock:
                self._conns.add(conn)
            sel.register(conn, selectors.EVENT_READ, state)

    def _selector_read(
        self,
        sel: selectors.BaseSelector,
        states: dict[socket.socket, _SelectorConn],
        state: _SelectorConn,
    ) -> None:
        try:
            data = state.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._selector_drop(sel, states, state)
            return
        if not data:
            self._selector_drop(sel, states, state)
            return
        state.decoder.feed(data)
        while state.sock in states:
            try:
                message = state.decoder.next_message()
            except MessageDecodeError as exc:
                # Well-framed junk: the frame's bytes are already consumed,
                # so the stream is in sync — report and keep parsing.
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="decode").inc()
                self._selector_send(
                    sel, states, state,
                    ErrorReply(error=str(exc), recoverable=True),
                )
                continue
            except (FrameIntegrityError, ProtocolError) as exc:
                if OBS.enabled:
                    OBS.counter("ipc.error_replies", reason="framing").inc()
                self._selector_send(
                    sel, states, state,
                    ErrorReply(error=str(exc), recoverable=False),
                )
                state.closing = True
                if state.sock in states and not state.outbuf:
                    self._selector_drop(sel, states, state)
                return
            if message is None:
                return
            reply = self._dispatch(message)
            if reply is not None:
                self._selector_send(sel, states, state, reply)

    def _selector_send(
        self,
        sel: selectors.BaseSelector,
        states: dict[socket.socket, _SelectorConn],
        state: _SelectorConn,
        message: Message,
    ) -> None:
        try:
            frame = FrameCodec.encode(message)
        except ProtocolError:
            return
        if OBS.enabled:
            OBS.counter("ipc.frames", dir="send", type=message.TYPE).inc()
            OBS.counter("ipc.bytes", dir="send", type=message.TYPE).inc(
                len(frame)
            )
        state.outbuf.extend(frame)
        self._selector_flush(sel, states, state)

    def _selector_flush(
        self,
        sel: selectors.BaseSelector,
        states: dict[socket.socket, _SelectorConn],
        state: _SelectorConn,
    ) -> None:
        while state.outbuf:
            try:
                sent = state.sock.send(state.outbuf)
            except BlockingIOError:
                break
            except OSError:
                self._selector_drop(sel, states, state)
                return
            del state.outbuf[:sent]
        if not state.outbuf and state.closing:
            self._selector_drop(sel, states, state)
            return
        events = selectors.EVENT_READ
        if state.outbuf:
            events |= selectors.EVENT_WRITE
        with contextlib.suppress(KeyError, ValueError, OSError):
            sel.modify(state.sock, events, state)

    def _selector_drop(
        self,
        sel: selectors.BaseSelector,
        states: dict[socket.socket, _SelectorConn],
        state: _SelectorConn,
    ) -> None:
        states.pop(state.sock, None)
        with contextlib.suppress(KeyError, ValueError):
            sel.unregister(state.sock)
        with self._conn_lock:
            self._conns.discard(state.sock)
        with contextlib.suppress(OSError):
            state.sock.close()
