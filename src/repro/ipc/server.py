"""Unix-socket endpoint of the HARP resource manager.

A threaded ``AF_UNIX`` server: each application connection is served by a
dedicated thread that decodes frames and dispatches them to a handler
callback, which returns the reply message.  Push messages (allocation
activations, utility polls) are delivered over the application's dedicated
push socket, exactly as described in §4.1.1.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from typing import Callable

from repro.ipc.messages import Ack, Message
from repro.ipc.protocol import ProtocolError, recv_message, send_message
from repro.obs import OBS

Handler = Callable[[Message], Message | None]


class HarpSocketServer:
    """The RM's request socket plus per-application push connections."""

    def __init__(self, socket_path: str, handler: Handler):
        self.socket_path = socket_path
        self.handler = handler
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._push_sockets: dict[int, socket.socket] = {}
        self._push_lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and accept in a background thread."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(32)
        self._listener = listener
        accept_thread = threading.Thread(
            target=self._accept_loop, name="harp-rm-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)

    def stop(self) -> None:
        """Shut down the listener and all connections."""
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.shutdown(socket.SHUT_RDWR)
            self._listener.close()
            self._listener = None
        with self._push_lock:
            for sock in self._push_sockets.values():
                with contextlib.suppress(OSError):
                    sock.close()
            self._push_sockets.clear()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "HarpSocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- push channel ----------------------------------------------------------------

    def open_push_channel(self, pid: int, push_socket_path: str) -> None:
        """Connect to an application's dedicated push socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(push_socket_path)
        with self._push_lock:
            old = self._push_sockets.pop(pid, None)
            if old is not None:
                with contextlib.suppress(OSError):
                    old.close()
            self._push_sockets[pid] = sock

    def push(self, pid: int, message: Message) -> bool:
        """Send a push message to an application; False if unreachable."""
        with self._push_lock:
            sock = self._push_sockets.get(pid)
        if sock is None:
            return False
        try:
            send_message(sock, message)
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="true"
                ).inc()
            return True
        except OSError:
            if OBS.enabled:
                OBS.counter(
                    "ipc.pushes", type=message.TYPE, delivered="false"
                ).inc()
            self.close_push_channel(pid)
            return False

    def close_push_channel(self, pid: int) -> None:
        with self._push_lock:
            sock = self._push_sockets.pop(pid, None)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    # -- internals ----------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="harp-rm-conn",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stopping.is_set():
                try:
                    message = recv_message(conn)
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                obs_on = OBS.enabled
                t0 = OBS.walltime() if obs_on else 0.0
                try:
                    reply = self.handler(message)
                except Exception as exc:  # handler bug must not kill the RM
                    reply = Ack(ok=False, error=f"handler error: {exc}")
                if obs_on:
                    OBS.counter("ipc.handled", type=message.TYPE).inc()
                    OBS.histogram(
                        "ipc.handler_seconds", type=message.TYPE
                    ).observe(OBS.walltime() - t0)
                if reply is not None:
                    try:
                        send_message(conn, reply)
                    except OSError:
                        return
