"""Application-side transports.

``HarpSocketClient`` is the real thing: a request connection to the RM's
Unix socket plus a dedicated listening push socket, per §4.1.1.
``InProcessTransport`` implements the same interface synchronously for the
deterministic simulation harness, where the RM and all applications live
in one process.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from typing import Callable

from repro.ipc.messages import Ack, Message
from repro.ipc.protocol import ProtocolError, recv_message, send_message
from repro.obs import OBS

PushHandler = Callable[[Message], Message | None]


class Transport:
    """Interface libharp uses to talk to the RM."""

    def request(self, message: Message) -> Message:
        """Send a request and wait for the reply."""
        raise NotImplementedError

    def set_push_handler(self, handler: PushHandler) -> None:
        """Install the callback invoked for RM push messages."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources."""


class HarpSocketClient(Transport):
    """Unix-socket transport with a dedicated push listener."""

    def __init__(self, rm_socket_path: str, push_socket_path: str):
        self.rm_socket_path = rm_socket_path
        self.push_socket_path = push_socket_path
        self._push_handler: PushHandler | None = None
        self._request_lock = threading.Lock()

        with contextlib.suppress(FileNotFoundError):
            os.unlink(push_socket_path)
        self._push_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._push_listener.bind(push_socket_path)
        self._push_listener.listen(1)
        self._push_thread = threading.Thread(
            target=self._push_loop, name="libharp-push", daemon=True
        )
        self._stopping = threading.Event()
        self._push_thread.start()

        self._request_sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._request_sock.connect(rm_socket_path)

    def request(self, message: Message) -> Message:
        obs_on = OBS.enabled
        t0 = OBS.walltime() if obs_on else 0.0
        with self._request_lock:
            send_message(self._request_sock, message)
            reply = recv_message(self._request_sock)
        if obs_on:
            OBS.histogram(
                "ipc.request_seconds", type=message.TYPE
            ).observe(OBS.walltime() - t0)
        if reply is None:
            raise ProtocolError("RM closed the connection")
        return reply

    def set_push_handler(self, handler: PushHandler) -> None:
        self._push_handler = handler

    def close(self) -> None:
        self._stopping.set()
        with contextlib.suppress(OSError):
            self._request_sock.close()
        with contextlib.suppress(OSError):
            self._push_listener.shutdown(socket.SHUT_RDWR)
        self._push_listener.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.push_socket_path)
        self._push_thread.join(timeout=2.0)

    def _push_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._push_listener.accept()
            except OSError:
                return
            with conn:
                while not self._stopping.is_set():
                    try:
                        message = recv_message(conn)
                    except (ProtocolError, OSError):
                        break
                    if message is None:
                        break
                    handler = self._push_handler
                    reply: Message | None = Ack(ok=True)
                    if handler is not None:
                        try:
                            result = handler(message)
                        except Exception as exc:
                            reply = Ack(ok=False, error=str(exc))
                        else:
                            if result is not None:
                                reply = result
                    try:
                        send_message(conn, reply)
                    except OSError:
                        break


class InProcessTransport(Transport):
    """Synchronous in-process channel for the simulation harness.

    The RM side installs a request handler; pushes invoke the libharp
    handler directly.  No threads, no sockets — fully deterministic.
    """

    def __init__(self, rm_handler: Callable[[Message], Message]):
        self._rm_handler = rm_handler
        self._push_handler: PushHandler | None = None
        self._closed = False

    def request(self, message: Message) -> Message:
        if self._closed:
            raise ProtocolError("transport closed")
        if OBS.enabled:
            OBS.counter("ipc.messages", dir="request", type=message.TYPE).inc()
        return self._rm_handler(message)

    def set_push_handler(self, handler: PushHandler) -> None:
        self._push_handler = handler

    def push(self, message: Message) -> Message | None:
        """RM side: deliver a push message to the application."""
        if self._closed:
            raise ProtocolError("transport closed")
        if OBS.enabled:
            OBS.counter("ipc.messages", dir="push", type=message.TYPE).inc()
        if self._push_handler is None:
            return Ack(ok=False, error="no push handler installed")
        return self._push_handler(message)

    def close(self) -> None:
        self._closed = True
