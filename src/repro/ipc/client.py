"""Application-side transports.

``HarpSocketClient`` is the real thing: a request connection to the RM's
Unix socket plus a dedicated listening push socket, per §4.1.1.
``InProcessTransport`` implements the same interface synchronously for the
deterministic simulation harness, where the RM and all applications live
in one process.

Hardening contract (docs/robustness.md): every request carries an
explicit timeout (``RequestTimeout`` instead of blocking forever on a
hung RM), ``close()`` is idempotent, and ``reconnect()`` re-establishes a
dropped request connection so :class:`repro.libharp.client.LibHarpClient`
can retry-with-backoff and re-register.  The in-process transport exposes
deterministic fault hooks (``push_filter``, ``fail_next_requests``) that
the fault-injection subsystem (``repro.fault``) uses to model push loss,
utility starvation, and flaky request paths without threads or clocks.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from typing import Callable

from repro.ipc.messages import Ack, Message
from repro.ipc.protocol import (
    ProtocolError,
    RequestTimeout,
    recv_message,
    send_message,
)
from repro.obs import OBS

PushHandler = Callable[[Message], Message | None]

#: Idle-poll granularity for the push listener's blocking reads.
_POLL_TIMEOUT_S = 0.2

#: Default per-request timeout: generous against a healthy RM, bounded
#: against a hung one.
DEFAULT_REQUEST_TIMEOUT_S = 5.0


class Transport:
    """Interface libharp uses to talk to the RM."""

    def request(
        self, message: Message, timeout: float | None = None
    ) -> Message:
        """Send a request and wait for the reply (bounded by ``timeout``)."""
        raise NotImplementedError

    def set_push_handler(self, handler: PushHandler) -> None:
        """Install the callback invoked for RM push messages."""
        raise NotImplementedError

    def reconnect(self) -> None:
        """Re-establish the request channel after a failure (optional)."""

    def close(self) -> None:
        """Release resources; must be idempotent."""


class HarpSocketClient(Transport):
    """Unix-socket transport with a dedicated push listener."""

    def __init__(
        self,
        rm_socket_path: str,
        push_socket_path: str,
        timeout: float = DEFAULT_REQUEST_TIMEOUT_S,
        join_timeout_s: float = 2.0,
    ):
        self.rm_socket_path = rm_socket_path
        self.push_socket_path = push_socket_path
        self.timeout = timeout
        self.join_timeout_s = join_timeout_s
        self._push_handler: PushHandler | None = None
        self._request_lock = threading.Lock()
        self._closed = False

        with contextlib.suppress(FileNotFoundError):
            os.unlink(push_socket_path)
        self._push_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._push_listener.bind(push_socket_path)
        self._push_listener.listen(1)
        self._push_thread = threading.Thread(
            target=self._push_loop, name="libharp-push", daemon=True
        )
        self._stopping = threading.Event()
        self._push_thread.start()

        self._request_sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.rm_socket_path)
        return sock

    def request(
        self, message: Message, timeout: float | None = None
    ) -> Message:
        if self._closed:
            raise ProtocolError("transport closed")
        effective = self.timeout if timeout is None else timeout
        obs_on = OBS.enabled
        t0 = OBS.walltime() if obs_on else 0.0
        try:
            with self._request_lock:
                self._request_sock.settimeout(effective)
                send_message(self._request_sock, message)
                reply = recv_message(self._request_sock)
        except socket.timeout as exc:
            if obs_on:
                OBS.counter("ipc.request_timeouts", type=message.TYPE).inc()
            raise RequestTimeout(
                f"no reply to {message.TYPE!r} within {effective}s"
            ) from exc
        if obs_on:
            OBS.histogram(
                "ipc.request_seconds", type=message.TYPE
            ).observe(OBS.walltime() - t0)
        if reply is None:
            raise ProtocolError("RM closed the connection")
        return reply

    def reconnect(self) -> None:
        """Drop and re-establish the request connection to the RM.

        The new connection is dialled and the old socket closed *outside*
        the request lock — ``close()`` can block flushing unsent data,
        and every in-flight ``request()`` queues on that lock.  Only the
        pointer swap is serialized.
        """
        if self._closed:
            raise ProtocolError("transport closed")
        sock = self._connect()
        with self._request_lock:
            old, self._request_sock = self._request_sock, sock
        with contextlib.suppress(OSError):
            old.close()
        if OBS.enabled:
            OBS.counter("ipc.reconnects").inc()

    def set_push_handler(self, handler: PushHandler) -> None:
        self._push_handler = handler

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        with contextlib.suppress(OSError):
            self._request_sock.close()
        with contextlib.suppress(OSError):
            self._push_listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._push_listener.close()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.push_socket_path)
        self._push_thread.join(timeout=self.join_timeout_s)
        if self._push_thread.is_alive() and OBS.enabled:
            OBS.counter("ipc.thread_join_timeouts", role="client").inc()

    def _push_loop(self) -> None:
        self._push_listener.settimeout(_POLL_TIMEOUT_S)
        while not self._stopping.is_set():
            try:
                conn, _ = self._push_listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                conn.settimeout(_POLL_TIMEOUT_S)
                self._serve_push_conn(conn)

    def _serve_push_conn(self, conn: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                message = recv_message(conn)
            except socket.timeout:
                continue
            except (ProtocolError, OSError):
                return
            if message is None:
                return
            handler = self._push_handler
            reply: Message | None = Ack(ok=True)
            if handler is not None:
                try:
                    result = handler(message)
                except Exception as exc:
                    reply = Ack(ok=False, error=str(exc))
                else:
                    if result is not None:
                        reply = result
            try:
                send_message(conn, reply)
            except OSError:
                return


class InProcessTransport(Transport):
    """Synchronous in-process channel for the simulation harness.

    The RM side installs a request handler; pushes invoke the libharp
    handler directly.  No threads, no sockets — fully deterministic.

    Fault hooks (installed by :mod:`repro.fault`):

    * ``push_filter`` — called with each push message before delivery;
      returning ``False`` drops the push (the RM sees no reply), modelling
      push-channel loss or a hung application that stopped answering.
    * ``fail_next_requests`` — the next N requests raise
      :class:`ProtocolError` before reaching the RM, modelling a flaky
      request channel; ``reconnect()`` clears the remaining budget.
    """

    def __init__(self, rm_handler: Callable[[Message], Message]):
        self._rm_handler = rm_handler
        self._push_handler: PushHandler | None = None
        self._closed = False
        self.push_filter: Callable[[Message], bool] | None = None
        self.fail_next_requests = 0

    def request(
        self, message: Message, timeout: float | None = None
    ) -> Message:
        if self._closed:
            raise ProtocolError("transport closed")
        if self.fail_next_requests > 0:
            self.fail_next_requests -= 1
            if OBS.enabled:
                OBS.counter("fault.injected", kind="request_failure").inc()
            raise ProtocolError("injected request failure")
        if OBS.enabled:
            OBS.counter("ipc.messages", dir="request", type=message.TYPE).inc()
        return self._rm_handler(message)

    def set_push_handler(self, handler: PushHandler) -> None:
        self._push_handler = handler

    def reconnect(self) -> None:
        if self._closed:
            raise ProtocolError("transport closed")
        self.fail_next_requests = 0

    def push(self, message: Message) -> Message | None:
        """RM side: deliver a push message to the application.

        Returns ``None`` when the push was lost (fault-injected channel
        loss); the RM treats that as a failed delivery.
        """
        if self._closed:
            raise ProtocolError("transport closed")
        if self.push_filter is not None and not self.push_filter(message):
            if OBS.enabled:
                OBS.counter(
                    "ipc.messages", dir="push_dropped", type=message.TYPE
                ).inc()
            return None
        if OBS.enabled:
            OBS.counter("ipc.messages", dir="push", type=message.TYPE).inc()
        if self._push_handler is None:
            return Ack(ok=False, error="no push handler installed")
        return self._push_handler(message)

    def close(self) -> None:
        self._closed = True
