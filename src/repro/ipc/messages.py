"""Message types of the libharp ↔ HARP RM protocol (Fig. 3).

Every message is a frozen dataclass with a ``TYPE`` tag; the codec maps
dataclasses to JSON dictionaries and back.  The set mirrors the paper's
control flow:

1. ``RegisterRequest`` / ``RegisterReply`` — application registration with
   PID, allocation granularity and adaptivity capabilities.
2. ``OperatingPointsMessage`` — operating points from the application
   description file, plus the utility-subscription flag.
3. ``ActivateOperatingPoint`` — RM → application push: selected ERV, the
   derived parallelization degree, the opaque knob payload, and the
   concrete hardware threads of the allocation.
4. ``UtilityRequest`` / ``UtilityReply`` — periodic utility feedback.
5. ``DeregisterRequest`` — graceful exit.
6. ``ObservabilityQuery`` / ``ObservabilityReply`` — harpobs extension:
   allocator hot-path counters and a telemetry-registry snapshot, for
   dashboards and operator tooling (``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


class ProtocolViolation(ValueError):
    """A structurally invalid or unknown message."""


@dataclass(frozen=True)
class Message:
    """Base class; subclasses define a unique ``TYPE`` tag."""

    TYPE = "message"

    def to_dict(self) -> dict[str, object]:
        data = asdict(self)
        data["type"] = self.TYPE
        return data


@dataclass(frozen=True)
class RegisterRequest(Message):
    """Application → RM: initial registration (§4.1.1 step 1)."""

    TYPE = "register"

    pid: int
    app_name: str
    granularity: str = "coarse"  # "coarse" | "fine"
    adaptivity: str = "static"  # "static" | "scalable" | "custom"
    provides_utility: bool = False
    push_socket: str | None = None

    def __post_init__(self) -> None:
        if self.granularity not in ("coarse", "fine"):
            raise ProtocolViolation(f"bad granularity {self.granularity!r}")
        if self.adaptivity not in ("static", "scalable", "custom"):
            raise ProtocolViolation(f"bad adaptivity {self.adaptivity!r}")


@dataclass(frozen=True)
class RegisterReply(Message):
    """RM → application: registration outcome."""

    TYPE = "register_reply"

    ok: bool
    session_id: int = 0
    error: str | None = None


@dataclass(frozen=True)
class OperatingPointsMessage(Message):
    """Application → RM: points from the description file (step 2)."""

    TYPE = "operating_points"

    pid: int
    points: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class ActivateOperatingPoint(Message):
    """RM → application: allocation decision push (step 3)."""

    TYPE = "activate"

    pid: int
    erv: list[int] = field(default_factory=list)
    degree: int = 1
    knobs: dict[str, object] = field(default_factory=dict)
    hw_threads: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class UtilityRequest(Message):
    """RM → application: utility poll (step 4)."""

    TYPE = "utility_request"

    pid: int


@dataclass(frozen=True)
class UtilityReply(Message):
    """Application → RM: current application-specific utility."""

    TYPE = "utility_reply"

    pid: int
    utility: float | None = None


@dataclass(frozen=True)
class DeregisterRequest(Message):
    """Application → RM: graceful shutdown."""

    TYPE = "deregister"

    pid: int


@dataclass(frozen=True)
class ObservabilityQuery(Message):
    """Client → RM: request allocator stats and a telemetry snapshot.

    Part of the harpobs layer (``docs/observability.md``): any connected
    client (an application, a dashboard scraper, an operator tool) can ask
    the RM for its solver hot-path counters and the metric snapshot of the
    telemetry registry without touching the RM process.
    """

    TYPE = "observability_query"

    pid: int = 0
    include_registry: bool = True


@dataclass(frozen=True)
class ObservabilityReply(Message):
    """RM → client: allocator counters plus the registry snapshot."""

    TYPE = "observability_reply"

    ok: bool = True
    allocator: dict[str, float] = field(default_factory=dict)
    registry: dict[str, object] = field(default_factory=dict)
    error: str | None = None


@dataclass(frozen=True)
class Ack(Message):
    """Generic acknowledgement."""

    TYPE = "ack"

    ok: bool = True
    error: str | None = None


@dataclass(frozen=True)
class ErrorReply(Message):
    """RM → peer: the request could not be understood or served.

    Sent instead of dropping the connection when the RM receives a frame
    it cannot decode (garbage JSON, unknown TYPE, malformed fields) or a
    request its handler cannot process.  ``recoverable`` tells the peer
    whether the stream is still in sync (a well-framed but undecodable
    message) or about to be closed (framing integrity lost).
    """

    TYPE = "error"

    error: str = ""
    recoverable: bool = True


# -- fleet protocol (coordinator ↔ node, docs/robustness.md §6) -------------------
#
# The hierarchical RM speaks the same framed codec as the application
# protocol: a node registers with the coordinator, sends one batched
# ``NodeReport`` per fleet epoch (heartbeat + app statuses + energy), and
# receives one batched ``NodeDirective`` back.  Migrations and adoption
# are synchronous rpc exchanges because the coordinator needs the reply
# (the suspend snapshot, the running-app inventory) before it can act.


@dataclass(frozen=True)
class NodeRegister(Message):
    """Node → coordinator: join the fleet."""

    TYPE = "node_register"

    node_id: int
    capacity_slots: int
    engine: str = "tick"


@dataclass(frozen=True)
class NodeRegisterReply(Message):
    """Coordinator → node: registration outcome and current epoch."""

    TYPE = "node_register_reply"

    ok: bool
    epoch: int = 0
    error: str | None = None


@dataclass(frozen=True)
class NodeReport(Message):
    """Node → coordinator: batched per-epoch heartbeat.

    One report per fleet epoch carries everything the coordinator needs:
    liveness (its arrival refreshes the node lease), per-app progress and
    cumulative energy (the re-admission checkpoint if this node dies),
    and free capacity for the next admission solve.
    """

    TYPE = "node_report"

    node_id: int
    epoch: int
    time_s: float = 0.0
    energy_j: float = 0.0
    free_slots: int = 0
    apps: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class NodeDirective(Message):
    """Coordinator → node: batched per-epoch placement directive."""

    TYPE = "node_directive"

    node_id: int
    epoch: int
    admissions: list[dict] = field(default_factory=list)
    kills: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class MigrateOut(Message):
    """Coordinator → node rpc: suspend an app and hand back its snapshot."""

    TYPE = "migrate_out"

    app_id: str


@dataclass(frozen=True)
class MigrateOutReply(Message):
    """Node → coordinator: the suspend snapshot (or a refusal)."""

    TYPE = "migrate_out_reply"

    ok: bool
    snapshot: dict = field(default_factory=dict)
    error: str | None = None


@dataclass(frozen=True)
class MigrateIn(Message):
    """Coordinator → node rpc: resume an app from a suspend snapshot."""

    TYPE = "migrate_in"

    snapshot: dict = field(default_factory=dict)


@dataclass(frozen=True)
class NodeAdoptQuery(Message):
    """Restarted coordinator → node rpc: inventory for re-adoption."""

    TYPE = "node_adopt_query"

    epoch: int = 0


@dataclass(frozen=True)
class NodeAdoptReply(Message):
    """Node → coordinator: running apps and capacity for re-adoption."""

    TYPE = "node_adopt_reply"

    node_id: int
    capacity_slots: int = 0
    time_s: float = 0.0
    energy_j: float = 0.0
    apps: list[dict] = field(default_factory=list)


_MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.TYPE: cls
    for cls in (
        RegisterRequest,
        RegisterReply,
        OperatingPointsMessage,
        ActivateOperatingPoint,
        UtilityRequest,
        UtilityReply,
        DeregisterRequest,
        ObservabilityQuery,
        ObservabilityReply,
        Ack,
        ErrorReply,
        NodeRegister,
        NodeRegisterReply,
        NodeReport,
        NodeDirective,
        MigrateOut,
        MigrateOutReply,
        MigrateIn,
        NodeAdoptQuery,
        NodeAdoptReply,
    )
}


def encode_message(message: Message) -> dict[str, object]:
    """Message → JSON-compatible dictionary."""
    return message.to_dict()


def decode_message(data: dict[str, object]) -> Message:
    """JSON dictionary → typed message; raises ProtocolViolation on junk."""
    if not isinstance(data, dict) or "type" not in data:
        raise ProtocolViolation("message without a type tag")
    tag = data["type"]
    cls = _MESSAGE_TYPES.get(tag)
    if cls is None:
        raise ProtocolViolation(f"unknown message type {tag!r}")
    payload = {k: v for k, v in data.items() if k != "type"}
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolViolation(f"malformed {tag} message: {exc}") from exc
