"""Application profile (description file) I/O.

HARP's deployment model (§4.3) bundles operating-point profiles with
applications and stores them under a configuration directory such as
``/etc/harp``.  Profiles are JSON documents containing the application
name, the platform they were measured on, and the operating points in
wire format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.operating_point import OperatingPointTable
from repro.core.resource_vector import ErvLayout

PROFILE_SCHEMA_VERSION = 1


def save_application_profile(
    table: OperatingPointTable,
    path: str | Path,
    platform_name: str = "",
) -> None:
    """Write an application's operating-point profile to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "platform": platform_name,
        "table": table.to_wire(),
    }
    path.write_text(json.dumps(document, indent=2))


def load_application_profile(
    path: str | Path, layout: ErvLayout
) -> OperatingPointTable:
    """Load an application profile saved by :func:`save_application_profile`."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise ValueError(f"unsupported profile schema {version}")
    return OperatingPointTable.from_wire(layout, document["table"])
