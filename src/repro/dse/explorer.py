"""Design-time exploration of operating points.

Runs an application alone on each candidate configuration (extended
resource vector) and records the non-functional characteristics the
HARP RM consumes: instant utility and attributed power, plus — for the
Fig. 1 style analyses — full-run execution time and energy.

This is the paper's "sophisticated offline analysis" path: the resulting
application profiles ship in description files which libharp forwards to
the RM at registration (the *HARP (Offline)* configuration of §6.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.apps.base import ApplicationModel
from repro.core.energy import EnergyAttributor
from repro.core.operating_point import OperatingPoint, OperatingPointTable
from repro.core.resource_vector import ErvLayout, ExtendedResourceVector
from repro.platform.dvfs import make_governor
from repro.platform.topology import Platform
from repro.sim.engine import World
from repro.sim.schedulers.pinned import PinnedScheduler


@dataclass
class MeasuredPoint:
    """Offline measurement of one configuration."""

    erv: ExtendedResourceVector
    utility: float
    power_w: float
    exec_time_s: float | None = None
    energy_j: float | None = None
    knobs: dict = field(default_factory=dict)


@dataclass
class DseResult:
    """The outcome of exploring one application."""

    app_name: str
    points: list[MeasuredPoint] = field(default_factory=list)

    def to_table(self, layout: ErvLayout) -> OperatingPointTable:
        """Convert to an RM-ready operating-point table."""
        return OperatingPointTable.from_points(
            self.app_name, layout, self.to_table_points()
        )

    def to_wire_points(self) -> list[dict]:
        """Description-file payload for libharp registration."""
        return [p.to_wire() for p in self.to_table_points()]

    def to_table_points(self) -> list[OperatingPoint]:
        return [
            OperatingPoint(
                erv=mp.erv,
                utility=mp.utility,
                power=mp.power_w,
                knobs=dict(mp.knobs),
                measured=True,
                samples=1,
            )
            for mp in self.points
        ]


def _placement_for(
    platform: Platform, erv: ExtendedResourceVector
) -> frozenset[int]:
    """First-fit placement of an ERV on an otherwise idle machine."""
    free = {
        ct.name: list(platform.cores_of_type(ct.name))
        for ct in platform.core_types
    }
    hw_ids: list[int] = []
    for comp, count in zip(erv.layout.components, erv.counts):
        pool = free[comp.core_type]
        if count > len(pool):
            raise ValueError(f"{erv} does not fit on {platform.name}")
        for _ in range(count):
            core = pool.pop(0)
            hw_ids.extend(t.thread_id for t in core.hw_threads[: comp.threads_used])
    return frozenset(hw_ids)


def _spawn_configured(world: World, model, platform: Platform, erv):
    """Spawn an application configured for ``erv`` exactly as libharp would.

    DSE measures *configuration variants*, so the probe must apply the same
    adaptation the RM's activation would trigger: affinity to the placed
    hardware threads plus the runtime-specific degree adjustment (OpenMP
    team sizing, KPN topology reshaping, nothing for static applications).
    """
    from repro.libharp.adaptivity import SimProcessAdapter

    affinity = _placement_for(platform, erv)
    process = world.spawn(model, managed=True)
    adapter = SimProcessAdapter(process)
    adapter.apply_allocation(
        degree=max(1, erv.total_threads()),
        knobs={},
        hw_threads=sorted(affinity),
    )
    return process


def measure_operating_point(
    model_factory: Callable[[], ApplicationModel],
    platform: Platform,
    erv: ExtendedResourceVector,
    probe_s: float = 1.0,
    governor: str = "performance",
    seed: int = 0,
    sensor_noise: float = 0.01,
    perf_noise: float = 0.02,
    freq_scale: float = 1.0,
) -> MeasuredPoint:
    """Probe a configuration: run briefly, return instant utility/power.

    Utility follows the paper's convention: the application-specific rate
    when the model provides one, IPS otherwise.  Probes carry realistic
    sensor/counter noise by default; pass zero for exact measurements.
    With ``freq_scale`` < 1, the allocation's cores are frequency-capped
    during the probe and the resulting point records the scale in its
    knob payload (the repro.ext.dvfs extension).
    """
    model = model_factory()
    base_governor = make_governor(governor, platform)
    if freq_scale < 1.0:
        from repro.ext.dvfs import FREQ_SCALE_KNOB, CappedGovernor

        capped = CappedGovernor(base_governor)
        core_ids = {
            t.core_id
            for t in platform.hw_threads
            if t.thread_id in _placement_for(platform, erv)
        }
        for core_id in core_ids:
            capped.set_cap(core_id, freq_scale)
        base_governor = capped
    world = World(
        platform,
        PinnedScheduler(),
        governor=base_governor,
        seed=seed,
        sensor_noise=sensor_noise,
        perf_noise=perf_noise,
    )
    process = _spawn_configured(world, model, platform, erv)
    attributor = EnergyAttributor(platform)
    start_energy = world.total_energy_j()
    start_busy = dict(world.busy_time_by_type_s)
    world.run_for(probe_s)
    interval = world.time_s
    energy_delta = world.total_energy_j() - start_energy
    busy_delta = {
        name: world.busy_time_by_type_s[name] - start_busy.get(name, 0.0)
        for name in world.busy_time_by_type_s
    }
    samples = attributor.attribute(
        energy_delta,
        interval,
        busy_delta,
        {process.pid: dict(process.cpu_time_by_type)},
    )
    power = samples[process.pid].power_w
    if model.provides_utility:
        utility = process.work_done / interval
    else:
        utility = world.perf.noisy_rate(
            world.perf.read_instructions(process.pid) / interval
        )
    knobs = {}
    if freq_scale < 1.0:
        from repro.ext.dvfs import FREQ_SCALE_KNOB

        knobs[FREQ_SCALE_KNOB] = freq_scale
    return MeasuredPoint(erv=erv, utility=utility, power_w=power, knobs=knobs)


def measure_full_run(
    model_factory: Callable[[], ApplicationModel],
    platform: Platform,
    erv: ExtendedResourceVector,
    governor: str = "performance",
    seed: int = 0,
    max_seconds: float = 3600.0,
) -> MeasuredPoint:
    """Run a configuration to completion: execution time and total energy.

    This is the measurement behind Fig. 1's configuration-space plots.
    """
    model = model_factory()
    world = World(
        platform,
        PinnedScheduler(),
        governor=make_governor(governor, platform),
        seed=seed,
        sensor_noise=0.0,
        perf_noise=0.0,
    )
    process = _spawn_configured(world, model, platform, erv)
    makespan = world.run_until_all_finished(max_seconds=max_seconds)
    energy = world.total_energy_j()
    utility = model.total_work / makespan if makespan > 0 else 0.0
    avg_power = energy / makespan if makespan > 0 else 0.0
    return MeasuredPoint(
        erv=erv,
        utility=utility,
        power_w=avg_power,
        exec_time_s=makespan,
        energy_j=energy,
    )


def enumerate_erv_grid(
    layout: ErvLayout,
    steps: dict[str, list[int]] | None = None,
    max_points: int | None = None,
) -> list[ExtendedResourceVector]:
    """A sub-sampled grid over the coarse-grained configuration space.

    Args:
        layout: the platform's ERV layout.
        steps: per-component-key count lists (keys as in
            :meth:`ErvLayout.make`, e.g. ``{"P1": [0, 2], "P2": [0, 4, 8],
            "E": [0, 8, 16]}``).  Defaults to an even spread per
            component.
        max_points: optional cap (deterministic decimation).
    """
    platform = layout.platform
    per_component: list[list[int]] = []
    for comp in layout.components:
        capacity = platform.count_of_type(comp.core_type)
        key = comp.core_type + (
            str(comp.threads_used) if comp.threads_used > 1 or any(
                c.core_type == comp.core_type and c.threads_used > 1
                for c in layout.components
            ) else ""
        )
        chosen = None
        if steps:
            chosen = steps.get(key) or steps.get(comp.core_type)
        if chosen is None:
            if capacity <= 4:
                chosen = list(range(capacity + 1))
            else:
                stride = max(1, capacity // 4)
                chosen = sorted({0, *range(stride, capacity + 1, stride), capacity})
        per_component.append([c for c in chosen if 0 <= c <= capacity])

    vectors = []
    for combo in itertools.product(*per_component):
        erv = ExtendedResourceVector(layout, tuple(combo))
        if erv.is_empty() or not erv.fits():
            continue
        vectors.append(erv)
    if max_points is not None and len(vectors) > max_points:
        stride = len(vectors) / max_points
        vectors = [vectors[int(i * stride)] for i in range(max_points)]
    return vectors


def explore_application(
    model_factory: Callable[[], ApplicationModel],
    platform: Platform,
    grid: list[ExtendedResourceVector] | None = None,
    probe_s: float = 1.0,
    governor: str = "performance",
    seed: int = 0,
) -> DseResult:
    """Full offline DSE of one application over a configuration grid."""
    layout = ErvLayout(platform)
    if grid is None:
        grid = enumerate_erv_grid(layout)
    model = model_factory()
    result = DseResult(app_name=model.name)
    for erv in grid:
        result.points.append(
            measure_operating_point(
                model_factory, platform, erv, probe_s=probe_s,
                governor=governor, seed=seed,
            )
        )
    return result
