"""Offline design-space exploration (§3.2.1, §6.3 "HARP (Offline)")."""

from repro.dse.explorer import (
    DseResult,
    enumerate_erv_grid,
    explore_application,
    measure_full_run,
    measure_operating_point,
)
from repro.dse.tables import (
    load_application_profile,
    save_application_profile,
)

__all__ = [
    "DseResult",
    "enumerate_erv_grid",
    "explore_application",
    "measure_operating_point",
    "measure_full_run",
    "load_application_profile",
    "save_application_profile",
]
