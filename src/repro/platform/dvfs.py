"""DVFS governors.

The paper runs its evaluation under the platform-default governors
(``powersave`` via intel_pstate on Raptor Lake, ``schedutil`` on the
Odroid) and repeats the Intel measurements under ``performance``
(§6.3.3).  We model the three governors at the granularity the simulation
needs: given per-core utilization over the last interval, pick the next
operating frequency for each core.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.platform.topology import Core, Platform


class Governor(ABC):
    """Selects per-core frequencies from observed utilization."""

    name: str

    def __init__(self, platform: Platform):
        self.platform = platform

    @abstractmethod
    def select_freq(self, core: Core, utilization: float) -> float:
        """Next frequency (MHz) for ``core`` given utilization in [0, 1]."""

    def select_all(self, utilization_by_core: dict[int, float]) -> dict[int, float]:
        """Frequencies for every core; missing cores are treated as idle."""
        freqs = {}
        for core in self.platform.cores:
            util = utilization_by_core.get(core.core_id, 0.0)
            freqs[core.core_id] = self.select_freq(core, util)
        return freqs


class PerformanceGovernor(Governor):
    """Always runs at maximum frequency."""

    name = "performance"

    def select_freq(self, core: Core, utilization: float) -> float:
        return float(core.core_type.max_freq_mhz)


class SchedutilGovernor(Governor):
    """Utilization-driven governor used on the Odroid.

    Mirrors the kernel's formula ``f = 1.25 * f_max * util`` clamped to the
    core's frequency range.
    """

    name = "schedutil"
    _HEADROOM = 1.25

    def select_freq(self, core: Core, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        ct = core.core_type
        target = self._HEADROOM * ct.max_freq_mhz * utilization
        return float(min(ct.max_freq_mhz, max(ct.min_freq_mhz, target)))


class PowersaveGovernor(Governor):
    """intel_pstate ``powersave``: demand-driven but less aggressive.

    Ramps frequency with utilization but keeps a lower floor and slightly
    less headroom than schedutil, reflecting intel_pstate's conservative
    response on mostly-idle cores.
    """

    name = "powersave"
    _HEADROOM = 1.1

    def select_freq(self, core: Core, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        ct = core.core_type
        target = self._HEADROOM * ct.max_freq_mhz * utilization
        return float(min(ct.max_freq_mhz, max(ct.min_freq_mhz, target)))


_GOVERNORS = {
    PerformanceGovernor.name: PerformanceGovernor,
    SchedutilGovernor.name: SchedutilGovernor,
    PowersaveGovernor.name: PowersaveGovernor,
}


def make_governor(name: str, platform: Platform) -> Governor:
    """Instantiate a governor by its Linux name."""
    try:
        cls = _GOVERNORS[name]
    except KeyError:
        raise ValueError(
            f"unknown governor {name!r}; available: {sorted(_GOVERNORS)}"
        ) from None
    return cls(platform)
