"""Per-core and platform power models.

Dynamic CPU power scales roughly with f·V² and voltage itself rises with
frequency, so we model active power as a cubic in the frequency ratio with
a small frequency-independent leakage floor.  This matches the shape of
published RAPL sweeps for both Raptor Lake and the Exynos 5422 closely
enough for the resource manager, which only sees integrated energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.topology import Core, CoreType, Platform

# Fraction of active power that does not scale with frequency (leakage and
# always-on structures).  Public alias for the engine's vectorized power
# integration, which applies the same formula over arrays of cores.
STATIC_FRACTION = 0.22
_STATIC_FRACTION = STATIC_FRACTION


@dataclass
class CorePowerModel:
    """Power model of a single core."""

    core_type: CoreType

    def power(
        self,
        busy_threads: int,
        freq_mhz: float | None = None,
        activity: float = 1.0,
    ) -> float:
        """Instantaneous core power in watts.

        Args:
            busy_threads: number of busy hardware threads on the core.
            freq_mhz: current operating frequency; defaults to maximum.
            activity: fraction of the interval the busy threads actually
                execute (1.0 = fully busy).
        """
        ct = self.core_type
        if busy_threads < 0 or busy_threads > ct.smt:
            raise ValueError(
                f"busy_threads must be in [0, {ct.smt}] for {ct.name}"
            )
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if busy_threads == 0 or activity <= 0.0:
            return ct.idle_power_w
        freq = ct.max_freq_mhz if freq_mhz is None else freq_mhz
        ratio = freq / ct.max_freq_mhz
        scale = _STATIC_FRACTION + (1.0 - _STATIC_FRACTION) * ratio**3
        active = ct.active_power_w * scale
        if busy_threads > 1:
            active += ct.smt_power_w * (busy_threads - 1) * scale
        return ct.idle_power_w + active * activity

    def power_fractional(
        self,
        busy_fractions: list[float],
        freq_mhz: float | None = None,
    ) -> float:
        """Power with per-hardware-thread fractional busyness.

        The most-busy hardware thread draws the core's primary active
        power; each additional busy sibling contributes the (smaller) SMT
        increment, all scaled by its busy fraction.
        """
        ct = self.core_type
        if len(busy_fractions) > ct.smt:
            raise ValueError(f"at most {ct.smt} hw threads on a {ct.name} core")
        fractions = sorted(
            (min(1.0, max(0.0, f)) for f in busy_fractions), reverse=True
        )
        if not fractions or fractions[0] <= 0.0:
            return ct.idle_power_w
        freq = ct.max_freq_mhz if freq_mhz is None else freq_mhz
        ratio = freq / ct.max_freq_mhz
        scale = _STATIC_FRACTION + (1.0 - _STATIC_FRACTION) * ratio**3
        power = ct.idle_power_w + ct.active_power_w * scale * fractions[0]
        for frac in fractions[1:]:
            power += ct.smt_power_w * scale * frac
        return power


@dataclass
class PlatformPowerModel:
    """Aggregates per-core power plus the uncore/static contribution."""

    platform: Platform

    def __post_init__(self) -> None:
        self._core_models = {
            ct.name: CorePowerModel(ct) for ct in self.platform.core_types
        }

    def core_power(
        self,
        core: Core,
        busy_threads: int,
        freq_mhz: float | None = None,
        activity: float = 1.0,
    ) -> float:
        """Power of one core given its busy-thread count and frequency."""
        return self._core_models[core.core_type.name].power(
            busy_threads, freq_mhz, activity
        )

    def package_power(
        self,
        busy_by_core: dict[int, int],
        freq_by_core: dict[int, float] | None = None,
    ) -> float:
        """Total package power for a per-core busy-thread mapping.

        Args:
            busy_by_core: core_id → number of busy hardware threads; cores
                absent from the mapping are idle.
            freq_by_core: optional core_id → frequency (MHz).
        """
        total = self.platform.uncore_power_w
        for core in self.platform.cores:
            busy = busy_by_core.get(core.core_id, 0)
            freq = None
            if freq_by_core is not None:
                freq = freq_by_core.get(core.core_id)
            total += self.core_power(core, busy, freq)
        return total

    def idle_power(self) -> float:
        """Package power with every core idle."""
        return self.package_power({})

    def max_power(self) -> float:
        """Package power with every hardware thread busy at max frequency."""
        busy = {c.core_id: c.core_type.smt for c in self.platform.cores}
        return self.package_power(busy)
