"""Energy sensors.

Models RAPL package counters (Intel) and the Odroid's per-island INA231
sensors: monotonically increasing energy counters read by polling, with
multiplicative measurement noise.  HARP's monitoring stack only ever sees
these counters, never the underlying power model.
"""

from __future__ import annotations

import numpy as np


class EnergySensor:
    """A monotonically increasing energy counter in joules.

    The simulation engine feeds instantaneous power samples via
    :meth:`accumulate`; readers poll :meth:`read_energy_j`.  Noise models
    sensor quantization and sampling jitter.
    """

    def __init__(self, name: str, noise_std: float = 0.0, seed: int | None = None):
        if noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        self.name = name
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)
        self._energy_j = 0.0

    def accumulate(self, power_w: float, dt_s: float) -> None:
        """Integrate ``power_w`` watts over ``dt_s`` seconds."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        if power_w < 0:
            raise ValueError("power_w must be >= 0")
        delta = power_w * dt_s
        if self.noise_std > 0:
            delta *= max(0.0, 1.0 + self._rng.normal(0.0, self.noise_std))
        self._energy_j += delta

    def accumulate_constant(self, power_w: float, dt_s: float, n: int) -> None:
        """Integrate ``n`` intervals of constant power, bit-identically.

        Equivalent to calling :meth:`accumulate` ``n`` times with the same
        arguments — same RNG stream consumption (``default_rng`` draws a
        batch of normals identically to repeated scalar draws), same
        sequential float accumulation order — but with the noise draws
        batched.  The event engine uses this to leap over idle stretches
        without diverging from the tick engine's energy counter.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if n == 0:
            return
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        if power_w < 0:
            raise ValueError("power_w must be >= 0")
        base = power_w * dt_s
        if self.noise_std > 0:
            noise = self._rng.normal(0.0, self.noise_std, size=n)
            energy = self._energy_j
            for i in range(n):
                energy += base * max(0.0, 1.0 + noise[i])
            self._energy_j = energy
        else:
            energy = self._energy_j
            for _ in range(n):
                energy += base
            self._energy_j = energy

    def read_energy_j(self) -> float:
        """Current counter value in joules (monotonic)."""
        return self._energy_j

    def reset(self) -> None:
        self._energy_j = 0.0


class RaplPackageSensor(EnergySensor):
    """RAPL-style package-domain counter with realistic noise (~1 %)."""

    def __init__(self, seed: int | None = None, noise_std: float = 0.01):
        super().__init__("rapl-package", noise_std=noise_std, seed=seed)


class IslandSensor(EnergySensor):
    """Odroid-style per-cluster sensor (A15 / A7 / memory / GPU)."""

    def __init__(self, island: str, seed: int | None = None, noise_std: float = 0.015):
        super().__init__(f"ina231-{island}", noise_std=noise_std, seed=seed)
        self.island = island
