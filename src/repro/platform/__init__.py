"""Heterogeneous CPU platform substrate.

This package models the hardware that HARP manages: core topologies
(Intel Raptor Lake P/E cores with SMT, Arm big.LITTLE islands), per-core
power models, DVFS governors, and RAPL-like energy sensors.  The paper's
resource manager never touches real silicon through anything richer than
core counts, frequencies, and energy counters, so an analytic model with
calibrated heterogeneity ratios exposes the same observable surface.
"""

from repro.platform.topology import (
    Core,
    CoreType,
    HwThread,
    Platform,
    odroid_xu3e,
    raptor_lake_i9_13900k,
)
from repro.platform.power import CorePowerModel, PlatformPowerModel
from repro.platform.dvfs import (
    Governor,
    PerformanceGovernor,
    PowersaveGovernor,
    SchedutilGovernor,
    make_governor,
)
from repro.platform.sensors import EnergySensor, RaplPackageSensor
from repro.platform.description import (
    HardwareDescription,
    load_hardware_description,
    platform_from_description,
    save_hardware_description,
)

__all__ = [
    "Core",
    "CoreType",
    "HwThread",
    "Platform",
    "raptor_lake_i9_13900k",
    "odroid_xu3e",
    "CorePowerModel",
    "PlatformPowerModel",
    "Governor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "SchedutilGovernor",
    "make_governor",
    "EnergySensor",
    "RaplPackageSensor",
    "HardwareDescription",
    "load_hardware_description",
    "save_hardware_description",
    "platform_from_description",
]
