"""Core topology of single-ISA heterogeneous processors.

The two evaluation platforms of the paper are modelled explicitly:

* Intel Raptor Lake Core i9-13900K — 8 high-performance P-cores with SMT
  (16 hardware threads) plus 16 energy-efficient E-cores, P-cores capped at
  4.6 GHz and E-cores at 3.8 GHz (the paper pins these to avoid thermal
  throttling).
* Odroid XU3-E (Samsung Exynos 5422) — a four-core Cortex-A15 (big) island
  at 1.8 GHz and a four-core Cortex-A7 (LITTLE) island at 1.2 GHz.

Speeds are expressed in normalized work-units per second where a single
P-core (respectively A15) hardware thread running alone at maximum
frequency delivers ``1.0``.  The heterogeneity ratios (E-core ≈ 0.55×
P-core performance at roughly one quarter of the power; A7 ≈ 0.35× A15)
follow published measurements for these parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CoreType:
    """A class of identical cores within a heterogeneous processor.

    Attributes:
        name: identifier such as ``"P"``, ``"E"``, ``"big"``, ``"LITTLE"``.
        base_speed: work-units/s of one hardware thread running alone on the
            core at ``max_freq_mhz``.
        smt: number of hardware threads per core (2 for Intel P-cores).
        smt_factor: per-thread speed multiplier when *all* SMT siblings of a
            core are busy.  Two busy P-hyperthreads each run at
            ``base_speed * smt_factor`` (> 0.5 means SMT increases total
            core throughput).
        max_freq_mhz: maximum (pinned) operating frequency.
        min_freq_mhz: lowest DVFS operating point.
        idle_power_w: per-core power when idle (clock-gated).
        active_power_w: per-core power when one hardware thread is fully
            busy at ``max_freq_mhz``.
        smt_power_w: additional power when the second SMT sibling is busy.
        ips_per_speed: instructions/s emitted per work-unit/s of progress;
            used by the synthetic perf substrate to derive IPS readings.
    """

    name: str
    base_speed: float
    smt: int
    smt_factor: float
    max_freq_mhz: int
    min_freq_mhz: int
    idle_power_w: float
    active_power_w: float
    smt_power_w: float
    ips_per_speed: float = 1.0e9

    def __post_init__(self) -> None:
        if self.smt < 1:
            raise ValueError(f"core type {self.name!r}: smt must be >= 1")
        if not 0.0 < self.smt_factor <= 1.0:
            raise ValueError(
                f"core type {self.name!r}: smt_factor must be in (0, 1]"
            )
        if self.base_speed <= 0:
            raise ValueError(f"core type {self.name!r}: base_speed must be > 0")
        if self.min_freq_mhz > self.max_freq_mhz:
            raise ValueError(
                f"core type {self.name!r}: min_freq_mhz > max_freq_mhz"
            )

    def thread_speed(self, busy_siblings: int, freq_mhz: float | None = None) -> float:
        """Speed of one busy hardware thread given total busy siblings on the core.

        Args:
            busy_siblings: number of busy hardware threads on the core
                (including the one being queried); must be >= 1.
            freq_mhz: operating frequency; defaults to the maximum.
        """
        if busy_siblings < 1:
            raise ValueError("busy_siblings must be >= 1")
        freq = self.max_freq_mhz if freq_mhz is None else freq_mhz
        scale = freq / self.max_freq_mhz
        if busy_siblings == 1:
            return self.base_speed * scale
        return self.base_speed * self.smt_factor * scale


@dataclass(frozen=True)
class HwThread:
    """A single hardware thread (logical CPU)."""

    thread_id: int
    core_id: int
    core_type: CoreType


@dataclass(frozen=True)
class Core:
    """A physical core with one or more hardware threads."""

    core_id: int
    core_type: CoreType
    hw_threads: tuple[HwThread, ...]


@dataclass
class Platform:
    """A heterogeneous processor: an ordered set of cores of several types.

    The ordering of ``core_types`` is significant: it defines the component
    order of resource vectors exchanged between the RM and applications.
    """

    name: str
    core_types: list[CoreType]
    cores: list[Core] = field(default_factory=list)
    uncore_power_w: float = 0.0

    def __post_init__(self) -> None:
        names = [ct.name for ct in self.core_types]
        if len(set(names)) != len(names):
            raise ValueError("duplicate core type names")
        self._type_by_name = {ct.name: ct for ct in self.core_types}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        counts: list[tuple[CoreType, int]],
        uncore_power_w: float = 0.0,
    ) -> "Platform":
        """Create a platform with ``count`` cores of each given type."""
        platform = cls(
            name=name,
            core_types=[ct for ct, _ in counts],
            uncore_power_w=uncore_power_w,
        )
        core_id = 0
        thread_id = 0
        for core_type, count in counts:
            for _ in range(count):
                threads = tuple(
                    HwThread(thread_id + i, core_id, core_type)
                    for i in range(core_type.smt)
                )
                platform.cores.append(Core(core_id, core_type, threads))
                core_id += 1
                thread_id += core_type.smt
        return platform

    # -- queries -----------------------------------------------------------

    def core_type(self, name: str) -> CoreType:
        """Look up a core type by name."""
        try:
            return self._type_by_name[name]
        except KeyError:
            raise KeyError(
                f"platform {self.name!r} has no core type {name!r}"
            ) from None

    def cores_of_type(self, name: str) -> list[Core]:
        """All cores of the named type, in id order."""
        return [c for c in self.cores if c.core_type.name == name]

    def count_of_type(self, name: str) -> int:
        """Number of cores of the named type."""
        return len(self.cores_of_type(name))

    @property
    def hw_threads(self) -> list[HwThread]:
        """All hardware threads in thread-id order."""
        return [t for core in self.cores for t in core.hw_threads]

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_hw_threads(self) -> int:
        return sum(len(c.hw_threads) for c in self.cores)

    def capacity_vector(self) -> list[int]:
        """Total cores per type, in ``core_types`` order (the paper's R-vector)."""
        return [self.count_of_type(ct.name) for ct in self.core_types]

    def max_speed(self) -> float:
        """Aggregate work-units/s with every hardware thread busy."""
        total = 0.0
        for core in self.cores:
            ct = core.core_type
            total += ct.thread_speed(ct.smt) * ct.smt
        return total


# -- reference platforms ----------------------------------------------------

def raptor_lake_i9_13900k() -> Platform:
    """Intel Raptor Lake Core i9-13900K: 8 P-cores (SMT) + 16 E-cores.

    Calibration: at the paper's pinned frequencies (4.6 GHz P / 3.8 GHz E)
    an E-core delivers roughly 55 % of a P-core's single-thread throughput
    at roughly one quarter of its power; a second busy P-hyperthread adds
    about 24 % total core throughput.
    """
    p_core = CoreType(
        name="P",
        base_speed=1.0,
        smt=2,
        smt_factor=0.62,
        max_freq_mhz=4600,
        min_freq_mhz=800,
        idle_power_w=0.35,
        active_power_w=15.0,
        smt_power_w=2.6,
        ips_per_speed=2.2e9,
    )
    e_core = CoreType(
        name="E",
        base_speed=0.55,
        smt=1,
        smt_factor=1.0,
        max_freq_mhz=3800,
        min_freq_mhz=800,
        idle_power_w=0.12,
        active_power_w=3.8,
        smt_power_w=0.0,
        ips_per_speed=2.0e9,
    )
    return Platform.build(
        "intel-raptor-lake-i9-13900k",
        [(p_core, 8), (e_core, 16)],
        uncore_power_w=9.0,
    )


def odroid_xu3e() -> Platform:
    """Odroid XU3-E (Exynos 5422): 4×Cortex-A15 (big) + 4×Cortex-A7 (LITTLE).

    Frequencies follow the paper's caps: 1.8 GHz big, 1.2 GHz LITTLE.
    """
    big = CoreType(
        name="big",
        base_speed=1.0,
        smt=1,
        smt_factor=1.0,
        max_freq_mhz=1800,
        min_freq_mhz=200,
        idle_power_w=0.08,
        active_power_w=1.55,
        smt_power_w=0.0,
        ips_per_speed=1.6e9,
    )
    little = CoreType(
        name="LITTLE",
        base_speed=0.35,
        smt=1,
        smt_factor=1.0,
        max_freq_mhz=1200,
        min_freq_mhz=200,
        idle_power_w=0.02,
        active_power_w=0.28,
        smt_power_w=0.0,
        ips_per_speed=1.1e9,
    )
    return Platform.build(
        "odroid-xu3e",
        [(big, 4), (little, 4)],
        uncore_power_w=0.55,
    )
