"""Hardware description files.

HARP stores its configuration — the hardware description and per-application
operating-point profiles — under a directory such as ``/etc/harp``
(§4.3).  This module implements the hardware half: a JSON document from
which a :class:`~repro.platform.topology.Platform` can be reconstructed,
so that administrators can inspect and tune the platform model without
touching code, exactly as the paper proposes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.platform.topology import CoreType, Platform

SCHEMA_VERSION = 1


@dataclass
class HardwareDescription:
    """Serializable description of a heterogeneous platform."""

    name: str
    core_types: list[dict] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    uncore_power_w: float = 0.0
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_platform(cls, platform: Platform) -> "HardwareDescription":
        """Capture an in-memory platform as a description document."""
        return cls(
            name=platform.name,
            core_types=[asdict(ct) for ct in platform.core_types],
            counts={
                ct.name: platform.count_of_type(ct.name)
                for ct in platform.core_types
            },
            uncore_power_w=platform.uncore_power_w,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "HardwareDescription":
        data = json.loads(text)
        version = data.get("schema_version", 0)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported hardware description schema {version}"
            )
        return cls(
            name=data["name"],
            core_types=data["core_types"],
            counts=data["counts"],
            uncore_power_w=data.get("uncore_power_w", 0.0),
            schema_version=version,
        )


def platform_from_description(desc: HardwareDescription) -> Platform:
    """Rebuild a :class:`Platform` from a description document."""
    counts = []
    for raw in desc.core_types:
        core_type = CoreType(**raw)
        counts.append((core_type, desc.counts[core_type.name]))
    return Platform.build(desc.name, counts, uncore_power_w=desc.uncore_power_w)


def save_hardware_description(platform: Platform, path: str | Path) -> None:
    """Write the platform's description file (``/etc/harp`` deployment model)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(HardwareDescription.from_platform(platform).to_json())


def load_hardware_description(path: str | Path) -> Platform:
    """Load a platform from a description file."""
    desc = HardwareDescription.from_json(Path(path).read_text())
    return platform_from_description(desc)
