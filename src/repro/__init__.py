"""repro — a full reproduction of *HARP: Energy-Aware and Adaptive
Management of Heterogeneous Processors* (Middleware 2025).

Public API tour:

* :mod:`repro.platform` — heterogeneous CPU models (Raptor Lake, Odroid
  XU3-E), power models, DVFS governors, energy sensors.
* :mod:`repro.sim` — the discrete-time OS substrate: schedulers (CFS,
  EAS, ITD, pinned), processes, perf counters.
* :mod:`repro.apps` — workload models (NPB, TBB, TensorFlow Lite, KPN).
* :mod:`repro.core` — HARP itself: operating points, the MMKP allocator,
  runtime exploration, monitoring, energy attribution, the manager.
* :mod:`repro.libharp` — the application-side library.
* :mod:`repro.ipc` — the libharp ↔ RM protocol over Unix sockets.
* :mod:`repro.dse` — offline design-space exploration.
* :mod:`repro.analysis` — scenario runners and the per-figure experiment
  harness used by ``benchmarks/``.

Quickstart::

    from repro.platform import raptor_lake_i9_13900k
    from repro.analysis.scenarios import run_harp_scenario

    result = run_harp_scenario(["ep.C"], platform="intel", seed=0)
    print(result.makespan_s, result.energy_j)
"""

from repro.platform import Platform, odroid_xu3e, raptor_lake_i9_13900k
from repro.core import (
    ErvLayout,
    ExtendedResourceVector,
    HarpManager,
    ManagerConfig,
    OperatingPoint,
    OperatingPointTable,
)

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "raptor_lake_i9_13900k",
    "odroid_xu3e",
    "ErvLayout",
    "ExtendedResourceVector",
    "HarpManager",
    "ManagerConfig",
    "OperatingPoint",
    "OperatingPointTable",
    "__version__",
]
