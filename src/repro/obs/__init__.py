"""harpobs — unified telemetry for the HARP reproduction.

A dependency-free observability layer: a process-local :class:`Registry`
of counters/gauges/histograms, structured events timestamped with the
monotonic simulated clock, and nestable spans, exported as Chrome
trace-event JSON (Perfetto), Prometheus text exposition, or a JSONL event
log.  See ``docs/observability.md``.

The module-level default registry :data:`OBS` starts **disabled**; every
instrumentation site across the allocator, manager, exploration planner,
monitor, IPC layer, and simulation engine guards itself with a single
``OBS.enabled`` attribute check, so telemetry costs nothing until someone
calls ``OBS.enable()`` (or runs ``python -m repro obs-report``).
"""

from repro.obs.exporters import (
    render_summary,
    to_chrome_trace,
    to_jsonl,
    to_prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus_text,
)
from repro.obs.registry import (
    OBS,
    Counter,
    Event,
    Gauge,
    Histogram,
    Registry,
    Span,
)

__all__ = [
    "OBS",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "render_summary",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus_text",
]
