"""The harpobs telemetry core: metrics, events, and spans.

A :class:`Registry` is a process-local container of named *instruments*
(counters, gauges, histograms), *structured events* timestamped with the
monotonic simulated clock, and nestable *spans* measured in wall time
(the simulated clock does not advance inside an allocation epoch, so span
durations come from ``time.perf_counter`` while their position on the
timeline comes from the simulated clock).

Design constraints, in order:

1. **Disabled is free.**  The module-level default registry ``OBS`` starts
   disabled; every instrumentation site in the hot paths guards itself
   with a single attribute check (``if OBS.enabled:``), so the disabled
   cost is one boolean load per site and no allocation whatsoever.
2. **Telemetry never perturbs the system.**  Recording draws no entropy,
   never touches RNG state, and never feeds back into allocation or
   simulation decisions; obs-on and obs-off runs with the same seeds
   produce bit-identical allocation sequences (enforced by a test).
3. **Thread safe.**  The IPC socket server serves each connection from a
   dedicated thread; all mutation happens under one registry lock.

Timestamps come from a pluggable ``clock`` callable returning simulated
seconds — :class:`repro.sim.engine.World` installs its own clock on the
default registry at construction time.  Without a clock, timestamps stay
at the last known value (0.0 initially); a per-registry sequence number
preserves total event order regardless.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "OBS",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
]

LabelKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(name: str, labels: dict[str, object]) -> LabelKey:
    if not labels:  # fast path: most hot-path instruments are unlabeled
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Counter:
    """A monotonically increasing value.

    Increments take a per-instrument lock: ``+=`` on a float spans several
    bytecodes, and the IPC socket server increments from one thread per
    connection.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down; remembers the last set."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class Event:
    """One recorded occurrence: an instant or a completed span.

    ``ts_s`` is simulated seconds (where on the timeline it happened);
    ``wall_s`` is the wall-clock duration for spans (how long the RM
    actually took, the §6.6 overhead quantity) and ``None`` for instants.
    ``seq`` preserves total order even when the simulated clock stands
    still across many events (e.g. inside one allocation epoch).
    """

    seq: int
    ts_s: float
    name: str
    kind: str  # "instant" | "span"
    track: str
    depth: int = 0
    wall_s: float | None = None
    args: dict = field(default_factory=dict)


class Span:
    """Context manager recording one span; exception safe (always ends)."""

    __slots__ = ("_registry", "name", "track", "args", "_t0_wall", "_t0_sim",
                 "depth")

    def __init__(self, registry: "Registry", name: str, track: str,
                 args: dict):
        self._registry = registry
        self.name = name
        self.track = track
        self.args = args
        self._t0_wall = 0.0
        self._t0_sim = 0.0
        self.depth = 0

    def __enter__(self) -> "Span":
        self._registry._span_enter(self)
        return self

    def __exit__(self, *exc_info) -> None:
        # Record the span even when its body raised: a crashed solve is
        # exactly the kind of thing a trace should show.
        self._registry._span_exit(self, failed=exc_info[0] is not None)


class _NullSpan:
    """Shared no-op span handed out while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Registry:
    """Process-local set of instruments, events, and spans.

    Args:
        enabled: start recording immediately (default off).
        clock: callable returning simulated seconds; installed later by
            :class:`repro.sim.engine.World` when absent.
        walltime: wall-duration source for spans; injectable so exports
            can be made byte-deterministic in tests.
        max_events: ring limit — events beyond it are counted as dropped
            rather than stored, bounding memory on long runs.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] | None = None,
        walltime: Callable[[], float] = time.perf_counter,
        max_events: int = 200_000,
    ):
        self.enabled = enabled
        self.walltime = walltime
        self.max_events = max_events
        #: Bumped on every reset; callers that cache instrument handles
        #: (the per-tick sim hot path) compare it to detect staleness.
        self.generation = 0
        self._clock = clock
        self._lock = threading.RLock()
        self._counters: dict[LabelKey, Counter] = {}
        self._gauges: dict[LabelKey, Gauge] = {}
        self._histograms: dict[LabelKey, Histogram] = {}
        self._events: list[Event] = []
        self._dropped_events = 0
        self._seq = 0
        # Span nesting depth per (thread, track).
        self._depths: dict[tuple[int, str], int] = {}

    # -- lifecycle -----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded state (instruments, events, clock)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._events.clear()
            self._dropped_events = 0
            self._seq = 0
            self._depths.clear()
            self._clock = None
            self.generation += 1

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        """Install the simulated-time source for event timestamps."""
        self._clock = clock

    def now_s(self) -> float:
        clock = self._clock
        return clock() if clock is not None else 0.0

    # -- instruments ---------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _label_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    key, Counter(name, dict(key[1]))
                )
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _label_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, dict(key[1])))
        return gauge

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _label_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(name, dict(key[1]), bounds)
                )
        return histogram

    # -- events & spans ------------------------------------------------------------

    def event(self, name: str, /, track: str = "events", **args: object) -> None:
        """Record an instant event at the current simulated time."""
        if not self.enabled:
            return
        self._append(
            name=name, kind="instant", track=track, depth=0, wall_s=None,
            args=dict(args),
        )

    def span(self, name: str, /, track: str = "rm", **args: object):
        """A nestable context manager timing one operation.

        Returns a shared no-op object while disabled, so callers can
        unconditionally write ``with OBS.span(...):``; hot paths that
        cannot afford even that call should guard with ``OBS.enabled``.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, track, dict(args))

    def _span_enter(self, span: Span) -> None:
        span._t0_wall = self.walltime()
        span._t0_sim = self.now_s()
        key = (threading.get_ident(), span.track)
        with self._lock:
            span.depth = self._depths.get(key, 0)
            self._depths[key] = span.depth + 1

    def _span_exit(self, span: Span, failed: bool) -> None:
        wall = self.walltime() - span._t0_wall
        key = (threading.get_ident(), span.track)
        args = span.args
        if failed:
            args = dict(args, failed=True)
        sim_dur = self.now_s() - span._t0_sim
        if sim_dur > 0:
            args = dict(args, sim_dur_s=sim_dur)
        with self._lock:
            depth = self._depths.get(key, 1) - 1
            if depth <= 0:
                self._depths.pop(key, None)
            else:
                self._depths[key] = depth
        self._append(
            name=span.name, kind="span", track=span.track, depth=span.depth,
            wall_s=wall, args=args, ts_s=span._t0_sim,
        )

    def _append(
        self,
        name: str,
        kind: str,
        track: str,
        depth: int,
        wall_s: float | None,
        args: dict,
        ts_s: float | None = None,
    ) -> None:
        # Read the clock before taking the lock: the clock is an injected
        # callable of unknown cost (and possibly re-entrant into this
        # registry), so it must not run inside the critical section.
        if ts_s is None:
            ts_s = self.now_s()
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped_events += 1
                return
            self._events.append(
                Event(
                    seq=self._seq,
                    ts_s=ts_s,
                    name=name,
                    kind=kind,
                    track=track,
                    depth=depth,
                    wall_s=wall_s,
                    args=args,
                )
            )
            self._seq += 1

    # -- read side -----------------------------------------------------------------

    @property
    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    @property
    def dropped_events(self) -> int:
        return self._dropped_events

    def counters(self) -> list[Counter]:
        with self._lock:
            return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        with self._lock:
            return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        with self._lock:
            return [self._histograms[k] for k in sorted(self._histograms)]

    def snapshot(self) -> dict:
        """JSON-compatible summary of all instruments (no event bodies).

        This is what the ``ObservabilityQuery`` IPC message returns: small
        enough to frame, complete enough to drive a dashboard scrape.
        """
        with self._lock:
            return {
                "enabled": self.enabled,
                "counters": [
                    {"name": c.name, "labels": c.labels, "value": c.value}
                    for c in self.counters()
                ],
                "gauges": [
                    {"name": g.name, "labels": g.labels, "value": g.value}
                    for g in self.gauges()
                ],
                "histograms": [
                    {
                        "name": h.name,
                        "labels": h.labels,
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min if h.count else None,
                        "max": h.max if h.count else None,
                        "bounds": list(h.bounds),
                        "bucket_counts": list(h.bucket_counts),
                    }
                    for h in self.histograms()
                ],
                "n_events": len(self._events),
                "dropped_events": self._dropped_events,
            }


#: The process-local default registry every instrumentation site uses.
#: Disabled by default: the hot paths pay one attribute check and nothing
#: else until someone calls ``OBS.enable()``.
OBS = Registry(enabled=False)
