"""Exporters for the harpobs registry.

Three formats, one source of truth:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Simulated
  seconds map to trace microseconds (1 sim second == 1e6 ts units); each
  registry *track* (``rm``, ``app:<name>``, ``ipc``, …) becomes its own
  named thread row.  Spans become complete ``"X"`` events whose duration
  is the measured wall time (the simulated clock stands still inside an
  allocation epoch, so wall time is the only meaningful span length;
  ``args.wall_us`` and ``args.sim_dur_s`` keep both readable).  Instant
  events become thread-scoped ``"i"`` events, and final counter values are
  emitted as one ``"C"`` sample each at the trace end.
* **Prometheus text exposition** (:func:`to_prometheus_text`) — a
  point-in-time dump of all counters/gauges/histograms in the 0.0.4 text
  format, suitable for ``curl``-style scraping or file-based ingestion.
* **JSONL event log** (:func:`to_jsonl`) — one JSON object per event,
  newline separated, for ad-hoc ``jq``/pandas analysis.

All exporters only *read* the registry; exporting a disabled registry is
valid (it dumps whatever was recorded while it was enabled).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import Histogram, Registry

__all__ = [
    "render_summary",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus_text",
]

_TRACE_PID = 1
_PROM_PREFIX = "harp_"


def _metric_name(name: str) -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return _PROM_PREFIX + safe


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# -- Chrome trace-event JSON (Perfetto) ---------------------------------------------


def to_chrome_trace(registry: Registry) -> dict:
    """Registry → Chrome trace-event JSON object (Perfetto-loadable)."""
    events = registry.events
    # Stable track→tid mapping in first-appearance order, so per-app
    # tracks show up in the order applications entered the system.
    tids: dict[str, int] = {}
    for event in events:
        if event.track not in tids:
            tids[event.track] = len(tids) + 1

    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "harp (sim-time µs)"},
        }
    ]
    for track, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )

    end_ts = 0.0
    for event in events:
        ts_us = event.ts_s * 1e6
        if ts_us > end_ts:
            end_ts = ts_us
        common = {
            "name": event.name,
            "pid": _TRACE_PID,
            "tid": tids[event.track],
            "ts": ts_us,
        }
        if event.kind == "span":
            wall_us = (event.wall_s or 0.0) * 1e6
            args = dict(event.args, wall_us=wall_us, depth=event.depth)
            trace_events.append(
                {**common, "ph": "X", "dur": wall_us, "args": args}
            )
        else:
            trace_events.append(
                {**common, "ph": "i", "s": "t", "args": dict(event.args)}
            )

    for counter in registry.counters():
        series = counter.name
        if counter.labels:
            series += _label_str(counter.labels)
        trace_events.append(
            {
                "name": series,
                "ph": "C",
                "pid": _TRACE_PID,
                "tid": 0,
                "ts": end_ts,
                "args": {"value": counter.value},
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "harpobs",
            "time_mapping": "1 simulated second == 1e6 trace ts units",
            "dropped_events": registry.dropped_events,
        },
    }


def write_chrome_trace(registry: Registry, path: str | Path) -> None:
    """Write :func:`to_chrome_trace` output as JSON to ``path``."""
    Path(path).write_text(json.dumps(to_chrome_trace(registry), indent=1) + "\n")


# -- Prometheus text exposition ------------------------------------------------------


def _histogram_lines(histogram: Histogram) -> list[str]:
    name = _metric_name(histogram.name)
    lines = []
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.bucket_counts):
        cumulative += count
        lines.append(
            f"{name}_bucket"
            f"{_label_str(histogram.labels, {'le': _fmt(bound)})}"
            f" {cumulative}"
        )
    lines.append(
        f"{name}_bucket{_label_str(histogram.labels, {'le': '+Inf'})}"
        f" {histogram.count}"
    )
    lines.append(f"{name}_sum{_label_str(histogram.labels)} {repr(histogram.sum)}")
    lines.append(f"{name}_count{_label_str(histogram.labels)} {histogram.count}")
    return lines


def to_prometheus_text(registry: Registry) -> str:
    """Registry → Prometheus text-exposition dump (format 0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        name = _metric_name(counter.name)
        header(name, "counter")
        lines.append(f"{name}{_label_str(counter.labels)} {_fmt(counter.value)}")
    for gauge in registry.gauges():
        name = _metric_name(gauge.name)
        header(name, "gauge")
        lines.append(f"{name}{_label_str(gauge.labels)} {repr(gauge.value)}")
    for histogram in registry.histograms():
        name = _metric_name(histogram.name)
        header(name, "histogram")
        lines.extend(_histogram_lines(histogram))
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus_text(registry: Registry, path: str | Path) -> None:
    """Write :func:`to_prometheus_text` output to ``path``."""
    Path(path).write_text(to_prometheus_text(registry))


# -- JSONL event log ----------------------------------------------------------------


def to_jsonl(registry: Registry) -> str:
    """Registry events → newline-delimited JSON, one object per event."""
    lines = []
    for event in registry.events:
        record = {
            "seq": event.seq,
            "ts_s": event.ts_s,
            "name": event.name,
            "kind": event.kind,
            "track": event.track,
        }
        if event.kind == "span":
            record["wall_s"] = event.wall_s
            record["depth"] = event.depth
        if event.args:
            record["args"] = event.args
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def write_jsonl(registry: Registry, path: str | Path) -> None:
    """Write :func:`to_jsonl` output to ``path``."""
    Path(path).write_text(to_jsonl(registry))


# -- human-readable summary ----------------------------------------------------------


def render_summary(registry: Registry) -> str:
    """Text report of all instruments plus span aggregates, for the CLI."""
    lines: list[str] = []
    counters = registry.counters()
    if counters:
        lines.append("counters:")
        for counter in counters:
            key = f"{counter.name}{_label_str(counter.labels)}"
            lines.append(f"  {key:<52} {_fmt(counter.value):>12}")
    gauges = registry.gauges()
    if gauges:
        lines.append("gauges:")
        for gauge in gauges:
            key = f"{gauge.name}{_label_str(gauge.labels)}"
            lines.append(f"  {key:<52} {gauge.value:>12.4g}")
    histograms = registry.histograms()
    if histograms:
        lines.append("histograms:")
        for histogram in histograms:
            key = f"{histogram.name}{_label_str(histogram.labels)}"
            if histogram.count:
                stats = (
                    f"n={histogram.count} mean={histogram.mean():.3g}"
                    f" min={histogram.min:.3g} max={histogram.max:.3g}"
                )
            else:
                stats = "n=0"
            lines.append(f"  {key:<52} {stats}")

    # Span aggregates: total/mean wall time per (track, name).
    span_agg: dict[tuple[str, str], list[float]] = {}
    n_instants = 0
    for event in registry.events:
        if event.kind == "span":
            span_agg.setdefault((event.track, event.name), []).append(
                event.wall_s or 0.0
            )
        else:
            n_instants += 1
    if span_agg:
        lines.append("spans (wall time):")
        for (track, name), walls in sorted(span_agg.items()):
            lines.append(
                f"  {track + '/' + name:<52} n={len(walls):<6}"
                f" total={sum(walls) * 1e3:.2f}ms"
                f" mean={sum(walls) / len(walls) * 1e6:.1f}µs"
            )
    lines.append(
        f"events: {len(registry.events)} recorded"
        f" ({n_instants} instants), {registry.dropped_events} dropped"
    )
    return "\n".join(lines)
