"""Fault plans: reproducible schedules of injected failures.

A plan is data, not behaviour: a sorted list of (time, kind, target,
params) records that the injector executes against a live world.  Plans
can be written by hand for targeted tests or generated from a seed for
chaos-style sweeps; either way they serialize to JSON so a failing run
can be replayed exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class FaultKind(enum.Enum):
    """Everything the injector knows how to break."""

    #: The target process dies silently (no exit notification); the RM
    #: must detect it through the liveness lease.
    APP_CRASH = "app_crash"
    #: The target application stops answering utility polls while still
    #: consuming CPU; the RM detects the feedback starvation.
    APP_HANG = "app_hang"
    #: The target's request channel delivers undecodable junk for the
    #: next ``count`` requests (in-process analogue of a garbage frame).
    GARBAGE_FRAME = "garbage_frame"
    #: The target's request channel drops mid-message for the next
    #: ``count`` requests (in-process analogue of a truncated frame).
    TRUNCATED_FRAME = "truncated_frame"
    #: The target's push channel silently drops everything; the next
    #: activation push fails and the RM escalates to teardown.
    PUSH_LOSS = "push_loss"
    #: The target's activation replies are delayed by ``delay_s``.
    DELAYED_REPLY = "delayed_reply"
    #: The next ``count`` MMKP solves raise; the RM degrades to the
    #: fair-share allocation.
    SOLVER_FAILURE = "solver_failure"
    #: The RM crashes and restarts from its last snapshot, then adopts
    #: the still-running applications.
    RM_RESTART = "rm_restart"
    #: A whole node dies silently (world frozen, links dead); the
    #: coordinator's node lease expires and the node's apps are
    #: re-admitted elsewhere.  Fleet-scoped: ``target`` names a node id.
    NODE_CRASH = "node_crash"
    #: The coordinator↔node link drops both directions for
    #: ``duration_epochs`` fleet epochs; the node degrades to autonomous
    #: operation and reconciles on reconnect.  Fleet-scoped.
    NODE_PARTITION = "node_partition"
    #: The coordinator crashes and restarts from its last snapshot, then
    #: re-adopts every node (the fleet-level analogue of RM_RESTART).
    COORDINATOR_RESTART = "coordinator_restart"
    #: A live migration is forced and then aborted after the source
    #: suspend: the app must be rolled back onto its source node with no
    #: loss of work or energy accounting.  Fleet-scoped.
    MIGRATION_ABORT = "migration_abort"


#: The fleet-scoped kinds executed by ``repro.fleet.faults`` (everything
#: else is node-internal and handled by :class:`SimFaultInjector`).
NODE_FAULT_KINDS: tuple[FaultKind, ...] = (
    FaultKind.NODE_CRASH,
    FaultKind.NODE_PARTITION,
    FaultKind.COORDINATOR_RESTART,
    FaultKind.MIGRATION_ABORT,
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes:
        at_s: simulated time at which the fault fires.
        kind: what breaks.
        target: application name to aim at; ``None`` picks the managed
            session with the lowest pid at fire time.
        params: kind-specific knobs (``count``, ``delay_s``).
    """

    at_s: float
    kind: FaultKind
    target: str | None = None
    params: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {
            "at_s": self.at_s,
            "kind": self.kind.value,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Fault":
        return cls(
            at_s=float(data["at_s"]),
            kind=FaultKind(data["kind"]),
            target=data.get("target"),
            params=dict(data.get("params", {})),
        )


@dataclass
class FaultPlan:
    """An ordered schedule of faults, optionally seed-generated."""

    faults: list[Fault] = field(default_factory=list)
    seed: int | None = None

    def __post_init__(self) -> None:
        self.faults = sorted(self.faults, key=lambda f: (f.at_s, f.kind.value))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float,
        kinds: list[FaultKind] | None = None,
        n_faults: int = 3,
        targets: list[str] | None = None,
    ) -> "FaultPlan":
        """Draw a reproducible plan from a seed.

        Times are uniform over ``[0.1 * horizon, 0.9 * horizon]`` so
        faults land while the workload is actually running; kinds and
        targets are drawn uniformly from the given pools.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        pool = list(kinds or [FaultKind.APP_CRASH, FaultKind.GARBAGE_FRAME])
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(n_faults):
            at_s = float(rng.uniform(0.1 * horizon_s, 0.9 * horizon_s))
            kind = pool[int(rng.integers(len(pool)))]
            target = None
            if targets:
                target = targets[int(rng.integers(len(targets)))]
            faults.append(Fault(at_s=at_s, kind=kind, target=target))
        return cls(faults=faults, seed=seed)

    def to_wire(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [f.to_wire() for f in self.faults],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "FaultPlan":
        return cls(
            faults=[Fault.from_wire(f) for f in data.get("faults", [])],
            seed=data.get("seed"),
        )
