"""Executes a :class:`~repro.fault.plan.FaultPlan` against a live world.

The injector registers an ``on_event`` callback and fires each scheduled
fault on the first advance boundary at or after its timestamp; on the
event engine every fault timestamp is announced as a wakeup, so a leap
never skips an injection point and the firing tick matches the tick
engine exactly.  All faults act
through the same deterministic surfaces the production code exposes —
``World.kill``, the in-process transport's fault hooks, the manager's
forced-solver-failure budget, and snapshot/restore — so a faulted run
stays bit-exact reproducible for a given (workload seed, plan seed)
pair.
"""

from __future__ import annotations

from typing import Callable

from repro.core.manager import HarpManager
from repro.fault.plan import Fault, FaultKind, FaultPlan
from repro.ipc.messages import Message, UtilityReply, UtilityRequest
from repro.obs import OBS
from repro.sim.engine import World
from repro.sim.event import EventKind


class SimFaultInjector:
    """Fires plan faults into a (world, manager) pair at simulated times.

    Args:
        world: the simulation to break.
        manager: the RM under test; replaced in-place on RM_RESTART.
        plan: what to break and when.
        manager_factory: builds the replacement RM for RM_RESTART faults;
            defaults to a fresh :class:`HarpManager` with the same config
            and offline tables as the current one.
    """

    def __init__(
        self,
        world: World,
        manager: HarpManager,
        plan: FaultPlan,
        manager_factory: Callable[[], HarpManager] | None = None,
    ):
        self.world = world
        self.manager = manager
        self.plan = plan
        self.manager_factory = manager_factory
        #: Audit trail: one record per scheduled fault, in firing order.
        self.log: list[dict] = []
        self._next = 0
        world.on_event.append(self._on_event)
        self._wake_next()

    # -- scheduling -----------------------------------------------------------------

    def _on_event(self, world: World) -> None:
        while (
            self._next < len(self.plan.faults)
            and self.plan.faults[self._next].at_s <= world.time_s
        ):
            fault = self.plan.faults[self._next]
            self._next += 1
            self._fire(fault)
        self._wake_next()

    def _wake_next(self) -> None:
        """Announce the next pending fault time to an event-driven world."""
        if self.world.event_driven and self._next < len(self.plan.faults):
            self.world.request_wakeup(
                self.plan.faults[self._next].at_s, EventKind.FAULT
            )

    def done(self) -> bool:
        """True when every scheduled fault has fired."""
        return self._next >= len(self.plan.faults)

    def _fire(self, fault: Fault) -> None:
        applied, pid = self._apply(fault)
        self.log.append(
            {
                "at_s": self.world.time_s,
                "scheduled_s": fault.at_s,
                "kind": fault.kind.value,
                "pid": pid,
                "applied": applied,
            }
        )
        if OBS.enabled:
            OBS.counter(
                "fault.injected", kind=fault.kind.value,
                applied="true" if applied else "false",
            ).inc()
            OBS.event(
                "fault.fire", track="fault",
                kind=fault.kind.value, pid=pid, applied=applied,
                scheduled_s=fault.at_s,
            )

    # -- fault implementations --------------------------------------------------------

    def _apply(self, fault: Fault) -> tuple[bool, int | None]:
        if fault.kind is FaultKind.SOLVER_FAILURE:
            count = int(fault.params.get("count", 1))
            self.manager.fault_solver_failures += count
            # Force an epoch so the degradation is exercised now, not
            # whenever the next natural reallocation happens to land.
            self.manager.reallocate()
            return True, None
        if fault.kind is FaultKind.RM_RESTART:
            return self._restart_rm(), None

        pid = self._resolve_pid(fault)
        if pid is None:
            return False, None
        session = self.manager.sessions[pid]
        if fault.kind is FaultKind.APP_CRASH:
            self.world.kill(pid, silent=True)
            return True, pid
        if fault.kind is FaultKind.APP_HANG:
            # The application keeps burning CPU but its feedback loop
            # goes dark: utility polls are dropped until the RM's
            # starvation detector reaps the session.
            session.transport.push_filter = _drop_utility_polls
            return True, pid
        if fault.kind is FaultKind.PUSH_LOSS:
            session.transport.push_filter = _drop_everything
            return True, pid
        if fault.kind is FaultKind.DELAYED_REPLY:
            session.reply_delay_s = float(fault.params.get("delay_s", 0.05))
            return True, pid
        if fault.kind is FaultKind.GARBAGE_FRAME:
            # In-process analogue of a garbage frame reaching the RM: an
            # unexpected message hits the request handler, which must
            # answer with an error instead of dying.
            reply = self.manager.handle_request(UtilityReply(pid=pid))
            ok = getattr(reply, "ok", True)
            return not ok, pid
        if fault.kind is FaultKind.TRUNCATED_FRAME:
            # In-process analogue of a truncated frame: the next requests
            # from this application fail at the transport and libharp's
            # retry path has to recover.
            session.transport.fail_next_requests += int(
                fault.params.get("count", 1)
            )
            return True, pid
        raise ValueError(f"unhandled fault kind {fault.kind!r}")

    def _restart_rm(self) -> bool:
        old = self.manager
        snapshot = old.snapshot()
        old.shutdown()
        factory = self.manager_factory or (
            lambda: HarpManager(
                self.world,
                config=old.config,
                offline_tables=old.offline_tables,
            )
        )
        new = factory()
        new.restore(snapshot)
        new.adopt_running()
        self.manager = new
        return True

    def _resolve_pid(self, fault: Fault) -> int | None:
        """Lowest-pid live session matching the fault's target app."""
        for pid in sorted(self.manager.sessions):
            session = self.manager.sessions[pid]
            if session.process.finished:
                continue
            if fault.target is None or session.table.app_name == fault.target:
                return pid
        return None


def _drop_utility_polls(message: Message) -> bool:
    return not isinstance(message, UtilityRequest)


def _drop_everything(message: Message) -> bool:
    return False
