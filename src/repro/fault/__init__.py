"""harpfault: deterministic, seed-driven fault injection.

The robustness counterpart of the simulation harness (docs/robustness.md):
a :class:`FaultPlan` is a reproducible schedule of faults — application
crashes and hangs, push-channel loss, delayed replies, solver failures,
and full RM restarts — that a :class:`SimFaultInjector` fires against a
running world/manager pair at exact simulated times.  The same seed
always produces the same plan, and injection itself introduces no
wall-clock or unseeded randomness, so a faulted run is as bit-exact
reproducible as a clean one.

Socket-level wire faults (garbage frames, truncated frames, oversized
headers) live in :mod:`repro.fault.wire` and are aimed at the real
``HarpSocketServer`` rather than the in-process simulation transport.
"""

from repro.fault.injector import SimFaultInjector
from repro.fault.plan import NODE_FAULT_KINDS, Fault, FaultKind, FaultPlan
from repro.fault.wire import (
    send_garbage_frame,
    send_oversized_header,
    send_truncated_frame,
)

__all__ = [
    "NODE_FAULT_KINDS",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "SimFaultInjector",
    "send_garbage_frame",
    "send_oversized_header",
    "send_truncated_frame",
]
