"""Socket-level wire faults for the real IPC transports.

These helpers speak raw bytes at a connected ``AF_UNIX`` socket to
exercise the framing hardening of :mod:`repro.ipc`:

* a *garbage frame* is correctly length-prefixed but carries bytes that
  do not decode to a message — the server must answer with a recoverable
  ``ErrorReply`` and keep serving the connection;
* a *truncated frame* advertises more bytes than it delivers — the
  server must treat the stream as desynchronized and close it;
* an *oversized header* claims a body beyond ``MAX_FRAME_BYTES`` — same
  reaction, without ever allocating the claimed buffer.

Payload bytes come from a caller-provided seeded generator so chaos runs
stay reproducible.
"""

from __future__ import annotations

import socket
import struct

import numpy as np

from repro.ipc.protocol import MAX_FRAME_BYTES

_HEADER = struct.Struct(">I")


def send_garbage_frame(
    sock: socket.socket, rng: np.random.Generator, size: int = 64
) -> bytes:
    """Send a well-framed body of random bytes; returns the body sent."""
    if size < 1:
        raise ValueError("size must be >= 1")
    body = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
    sock.sendall(_HEADER.pack(len(body)) + body)
    return body


def send_truncated_frame(
    sock: socket.socket, claimed: int = 1024, delivered: int = 16
) -> None:
    """Advertise ``claimed`` body bytes but deliver only ``delivered``,
    then half-close the stream so the peer sees EOF mid-frame."""
    if not 0 <= delivered < claimed:
        raise ValueError("delivered must be in [0, claimed)")
    sock.sendall(_HEADER.pack(claimed) + b"x" * delivered)
    sock.shutdown(socket.SHUT_WR)


def send_oversized_header(sock: socket.socket) -> None:
    """Claim a frame larger than the protocol maximum."""
    sock.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
