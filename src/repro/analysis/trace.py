"""Execution tracing and telemetry.

Records time series from a running world — per-application allocations,
progress, package power, per-core-type busy time — for debugging,
visualization, and the allocation-timeline reports used by the examples.
A tracer is a plain ``on_tick`` listener; traces can be exported as
JSON-compatible dictionaries or rendered as a text timeline.

The tracer also feeds the harpobs registry (``repro.obs``): while the
default registry is enabled, every trace sample is mirrored as a
``trace.sample`` event plus ``trace.*`` gauges, so world-level time
series land in the same Perfetto/Prometheus exports as the RM's own
spans and counters (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import OBS
from repro.sim.engine import World


@dataclass
class TraceSample:
    """One sampling instant of the world."""

    time_s: float
    package_power_w: float
    running: dict[int, str] = field(default_factory=dict)
    progress: dict[int, float] = field(default_factory=dict)
    affinity_size: dict[int, int] = field(default_factory=dict)
    nthreads: dict[int, int] = field(default_factory=dict)


class WorldTracer:
    """Samples world state at a fixed interval via the on_tick hook."""

    def __init__(self, world: World, interval_s: float = 0.1):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.world = world
        self.interval_s = interval_s
        self.samples: list[TraceSample] = []
        self._next_sample = 0.0
        self._events: list[tuple[float, str]] = []
        world.on_tick.append(self._on_tick)
        world.on_process_start.append(
            lambda p: self._events.append(
                (world.time_s, f"start pid={p.pid} {p.model.name}")
            )
        )
        world.on_process_exit.append(
            lambda p: self._events.append(
                (world.time_s, f"exit pid={p.pid} {p.model.name}")
            )
        )

    @property
    def events(self) -> list[tuple[float, str]]:
        return list(self._events)

    def _on_tick(self, world: World) -> None:
        if world.time_s + 1e-9 < self._next_sample:
            return
        self._next_sample = world.time_s + self.interval_s
        sample = TraceSample(
            time_s=world.time_s,
            package_power_w=world.last_stats.package_power_w,
        )
        for process in world.running_processes():
            if process.daemon:
                continue
            sample.running[process.pid] = process.model.name
            sample.progress[process.pid] = process.progress_fraction()
            sample.affinity_size[process.pid] = (
                len(process.affinity) if process.affinity else
                world.platform.n_hw_threads
            )
            sample.nthreads[process.pid] = process.nthreads
        self.samples.append(sample)
        if OBS.enabled:
            OBS.gauge("trace.package_power_w").set(sample.package_power_w)
            OBS.gauge("trace.running_apps").set(len(sample.running))
            OBS.counter("trace.samples").inc()
            OBS.event(
                "trace.sample", track="trace",
                power_w=sample.package_power_w,
                apps={
                    str(pid): sample.running[pid] for pid in sample.running
                },
            )

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible dump of the trace."""
        return {
            "interval_s": self.interval_s,
            "events": [{"t_s": t, "event": e} for t, e in self._events],
            "samples": [
                {
                    "t_s": s.time_s,
                    "power_w": s.package_power_w,
                    "apps": {
                        str(pid): {
                            "name": s.running[pid],
                            "progress": s.progress[pid],
                            "hw_threads": s.affinity_size[pid],
                            "nthreads": s.nthreads[pid],
                        }
                        for pid in s.running
                    },
                }
                for s in self.samples
            ],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def _nearest_sample(self, times: list[float], t: float) -> TraceSample:
        """The sample whose time is closest to ``t`` (times are sorted)."""
        idx = bisect_left(times, t)
        if idx == 0:
            return self.samples[0]
        if idx == len(times):
            return self.samples[-1]
        before, after = times[idx - 1], times[idx]
        return self.samples[idx - 1 if t - before <= after - t else idx]

    def timeline(self, width: int = 60) -> str:
        """A text timeline: one row per application, '#' where running.

        Empty traces render as ``"(empty trace)"`` (the same benign
        behavior as :meth:`average_power_w` returning 0.0).
        """
        if not self.samples:
            return "(empty trace)"
        apps: dict[int, str] = {}
        for sample in self.samples:
            apps.update(sample.running)
        end = self.samples[-1].time_s or 1e-9
        # Samples are appended in time order, so one bisect per column
        # replaces the old O(samples × width) min() scan.
        times = [s.time_s for s in self.samples]
        lines = [f"0s {'-' * width} {end:.1f}s"]
        for pid in sorted(apps):
            row = []
            for col in range(width):
                t = end * (col + 0.5) / width
                sample = self._nearest_sample(times, t)
                row.append("#" if pid in sample.running else ".")
            lines.append(f"{apps[pid][:14]:>14} [{''.join(row)}]")
        return "\n".join(lines)

    def average_power_w(self) -> float:
        """Mean package power over the trace; 0.0 for an empty trace.

        Consistent with :meth:`timeline`, an empty trace yields a benign
        value instead of raising.
        """
        if not self.samples:
            return 0.0
        return sum(s.package_power_w for s in self.samples) / len(self.samples)
