"""Scenario definitions and runners for the paper's evaluation (§6).

A *scenario* is a set of applications launched together.  Runners execute
a scenario under one resource-management policy:

* ``cfs`` — the Linux baseline on Intel (Fig. 6);
* ``eas`` — the Energy-Aware Scheduler baseline on the Odroid (Fig. 7);
* ``itd`` — the extended Intel-Thread-Director allocator (Fig. 6);
* ``harp`` — HARP with online runtime exploration, measured at the stable
  stage after a warm-up phase (§6.3);
* ``harp-offline`` — HARP fed with offline DSE operating points;
* ``harp-noscaling`` — HARP allocations enforced but applications left
  unadapted (the Fig. 6 ablation).

HARP variants keep one world and manager across repeated rounds so the
profile store warms up, exactly like the paper's warm-up → stable
methodology; each measured round reports makespan and package energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps import kpn_model, npb_model, tbb_model, tflite_model
from repro.apps.base import ApplicationModel
from repro.core.manager import HarpManager, ManagerConfig
from repro.core.operating_point import MaturityStage
from repro.libharp.adaptivity import AdaptationMode
from repro.platform.dvfs import make_governor
from repro.platform.topology import Platform, odroid_xu3e, raptor_lake_i9_13900k
from repro.sim.engine import World
from repro.sim.schedulers.cfs import CfsScheduler
from repro.sim.schedulers.eas import EasScheduler
from repro.sim.schedulers.itd import ItdScheduler
from repro.sim.schedulers.pinned import PinnedScheduler

# -- evaluation scenario sets -----------------------------------------------------

INTEL_SINGLE_APPS: list[str] = [
    "bt.C", "cg.C", "ep.C", "ft.C", "is.C", "lu.C", "mg.C", "sp.C", "ua.C",
    "binpack", "fractal", "parallel-preorder", "pi", "primes", "seismic",
    "vgg", "alexnet",
]

INTEL_MULTI_SCENARIOS: list[list[str]] = [
    ["is.C", "lu.C"],
    ["ep.C", "mg.C"],
    ["bt.C", "cg.C"],
    ["ft.C", "sp.C", "ua.C"],
    ["vgg", "alexnet", "ep.C"],
    ["binpack", "fractal"],
    ["ep.C", "mg.C", "ft.C", "cg.C"],
    ["bt.C", "is.C", "lu.C", "sp.C", "ua.C"],
]

ODROID_SINGLE_APPS: list[str] = [
    "bt.A", "cg.A", "ep.A", "ft.A", "is.A", "lu.A", "mg.A", "sp.A", "ua.A",
    "mandelbrot", "mandelbrot-static", "lms", "lms-static",
]

ODROID_MULTI_SCENARIOS: list[list[str]] = [
    ["ep.A", "ft.A"],
    ["mg.A", "lu.A"],
    ["is.A", "ua.A", "cg.A"],
    ["mandelbrot", "lms"],
    ["bt.A", "sp.A"],
]

_DEFAULT_GOVERNOR = {"intel": "powersave", "odroid": "schedutil"}


def make_platform(name: str) -> Platform:
    """Evaluation platform by short name: ``"intel"`` or ``"odroid"``."""
    if name == "intel":
        return raptor_lake_i9_13900k()
    if name == "odroid":
        return odroid_xu3e()
    raise ValueError(f"unknown platform {name!r} (use 'intel' or 'odroid')")


def resolve_model(app_name: str) -> ApplicationModel:
    """Look up a benchmark by name across all suites."""
    for factory in (npb_model, tbb_model, tflite_model, kpn_model):
        try:
            return factory(app_name)
        except KeyError:
            continue
    raise KeyError(f"unknown benchmark {app_name!r}")


# -- results ---------------------------------------------------------------------------


@dataclass
class RoundResult:
    """One execution round of a scenario."""

    makespan_s: float
    energy_j: float
    app_times: dict[str, float] = field(default_factory=dict)
    app_energy_j: dict[str, float] = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """Averaged measurements of a scenario under one policy."""

    apps: list[str]
    policy: str
    platform: str
    rounds: list[RoundResult] = field(default_factory=list)
    warmup_rounds: int = 0
    stable_at_s: dict[str, float] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return sum(r.makespan_s for r in self.rounds) / len(self.rounds)

    @property
    def energy_j(self) -> float:
        return sum(r.energy_j for r in self.rounds) / len(self.rounds)


# -- runners -----------------------------------------------------------------------------


_BASELINE_SCHEDULERS = {
    "cfs": CfsScheduler,
    "eas": EasScheduler,
    "itd": ItdScheduler,
}


def _run_one_round(world: World, models: list[ApplicationModel], managed: bool) -> RoundResult:
    start_t = world.time_s
    start_e = world.total_energy_j()
    processes = [world.spawn(m, managed=managed) for m in models]
    makespan = world.run_until_all_finished() - start_t
    result = RoundResult(
        makespan_s=makespan,
        energy_j=world.total_energy_j() - start_e,
    )
    for process in processes:
        result.app_times[process.model.name] = process.elapsed_s(world.time_s)
        result.app_energy_j[process.model.name] = process.energy_true_j
    return result


def run_scenario(
    apps: list[str],
    platform: str = "intel",
    policy: str = "cfs",
    governor: str | None = None,
    seed: int = 0,
    rounds: int = 3,
    warmup_max_rounds: int = 30,
    warmup_max_seconds: float = 600.0,
    settle_rounds: int = 2,
    offline_tables: dict[str, list[dict]] | None = None,
    manager_config: ManagerConfig | None = None,
    model_factory: Callable[[str], ApplicationModel] = resolve_model,
) -> ScenarioResult:
    """Execute a scenario under a policy and return averaged measurements.

    For HARP policies the same world (and therefore the same profile
    store) persists across warm-up and measurement rounds; baselines use
    a fresh world per round with distinct seeds.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    governor_name = governor or _DEFAULT_GOVERNOR[platform]
    result = ScenarioResult(apps=list(apps), policy=policy, platform=platform)

    if policy in _BASELINE_SCHEDULERS:
        for i in range(rounds):
            plat = make_platform(platform)
            world = World(
                plat,
                _BASELINE_SCHEDULERS[policy](),
                governor=make_governor(governor_name, plat),
                seed=seed + i,
            )
            models = [model_factory(name) for name in apps]
            result.rounds.append(_run_one_round(world, models, managed=False))
        return result

    if policy not in ("harp", "harp-offline", "harp-noscaling"):
        raise ValueError(f"unknown policy {policy!r}")

    plat = make_platform(platform)
    world = World(
        plat,
        PinnedScheduler(),
        governor=make_governor(governor_name, plat),
        seed=seed,
    )
    config = manager_config or ManagerConfig()
    if policy == "harp-offline":
        if offline_tables is None:
            raise ValueError("harp-offline requires offline_tables")
        config.explore = False
    if policy == "harp-noscaling":
        config.adaptation = AdaptationMode.AFFINITY_ONLY
    manager = HarpManager(
        world, config, offline_tables=offline_tables, seed=seed
    )

    def all_stable() -> bool:
        if not config.explore:
            return True
        return all(
            name in manager.table_store
            and manager.table_store[name].stage is MaturityStage.STABLE
            for name in apps
        )

    warmup = 0
    while not all_stable():
        if warmup >= warmup_max_rounds or world.time_s > warmup_max_seconds:
            break
        models = [model_factory(name) for name in apps]
        _run_one_round(world, models, managed=True)
        warmup += 1
    # A couple of settle rounds let the hysteresis-damped allocation land
    # on its fixed point before measurements start.
    for _ in range(settle_rounds if config.explore else 0):
        models = [model_factory(name) for name in apps]
        _run_one_round(world, models, managed=True)
        warmup += 1
    result.warmup_rounds = warmup
    result.stable_at_s = dict(manager.stable_at_s)

    for _ in range(rounds):
        models = [model_factory(name) for name in apps]
        result.rounds.append(_run_one_round(world, models, managed=True))
    return result
