"""Per-figure experiment harness (consumed by ``benchmarks/``).

One entry point per table/figure of the paper's evaluation:

========================  =============================================
Function                   Paper artifact
========================  =============================================
``fig1_config_space``      Fig. 1 — ep.C / mg.C configuration spaces
``fig5_regression``        Fig. 5 — regression-model comparison
``fig6_raptor_lake``       Fig. 6 — Intel improvement factors
``fig7_odroid``            Fig. 7 — Odroid improvement factors
``fig8_learning``          Fig. 8 — learning-phase snapshots
``governor_comparison``    §6.3.3 — powersave vs performance
``overhead_experiment``    §6.6 — HARP overhead with adaptation ignored
``energy_attribution``     §5.1 — attribution MAPE validation
========================  =============================================

Every function accepts scale parameters so quick CI-grade runs and full
paper-grade runs share one code path; results are plain dictionaries and
lists, ready for tabulation.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import geomean, mean_and_std
from repro.analysis.scenarios import (
    INTEL_MULTI_SCENARIOS,
    INTEL_SINGLE_APPS,
    ODROID_MULTI_SCENARIOS,
    ODROID_SINGLE_APPS,
    make_platform,
    resolve_model,
    run_scenario,
    _run_one_round,
)
from repro.core.energy import EnergyAttributor
from repro.core.manager import HarpManager, ManagerConfig
from repro.core.operating_point import OperatingPointTable
from repro.core.pareto import common_point_ratio, igd, pareto_front_indices
from repro.core.regression import make_model, mape
from repro.core.resource_vector import ErvLayout
from repro.dse.explorer import (
    enumerate_erv_grid,
    explore_application,
    measure_full_run,
)
from repro.libharp.adaptivity import AdaptationMode
from repro.platform.dvfs import make_governor
from repro.sim.engine import World
from repro.sim.schedulers.cfs import CfsScheduler
from repro.sim.schedulers.pinned import PinnedScheduler

# Offline DSE results are deterministic per (platform, app, grid); cache
# them for the lifetime of the process so benches can share them.
_OFFLINE_CACHE: dict[tuple, list[dict]] = {}


def _stable_seed(*parts: object) -> int:
    """Deterministic 32-bit RNG seed from a canonical key string.

    The builtin ``hash()`` is salted per process (``PYTHONHASHSEED``), so
    it must never feed an RNG: two workers replaying the same (app,
    model, size, seed) cell would draw different training subsets.
    """
    key = "|".join(str(p) for p in parts)
    return zlib.crc32(key.encode("utf-8"))


def offline_points_for(
    apps: list[str],
    platform: str = "intel",
    probe_s: float = 0.6,
    max_points: int | None = 120,
) -> dict[str, list[dict]]:
    """Offline DSE profiles (wire format) for the given applications."""
    plat = make_platform(platform)
    layout = ErvLayout(plat)
    grid = enumerate_erv_grid(layout, max_points=max_points)
    tables: dict[str, list[dict]] = {}
    for app in apps:
        key = (platform, app, probe_s, max_points)
        if key not in _OFFLINE_CACHE:
            result = explore_application(
                lambda app=app: resolve_model(app),
                plat,
                grid=grid,
                probe_s=probe_s,
            )
            _OFFLINE_CACHE[key] = [
                p.to_wire() for p in result.to_table_points()
            ]
        tables[app] = _OFFLINE_CACHE[key]
    return tables


# -- Fig. 1: configuration spaces -----------------------------------------------------


def fig1_config_space(
    apps: tuple[str, ...] = ("ep.C", "mg.C"),
    e_step: int = 2,
    ht_step: int = 2,
) -> dict[str, list[dict]]:
    """Execution time / energy over (E-cores × P-hyperthreads) configs.

    Returns, per application, rows with ``e_cores``, ``p_hyperthreads``,
    ``time_s``, ``energy_j`` and a ``pareto`` flag from the paper's
    four-objective filter (time, energy, P-cores, E-cores, all minimized).
    """
    plat = make_platform("intel")
    layout = ErvLayout(plat)
    n_e = plat.count_of_type("E")
    n_p_ht = plat.count_of_type("P") * 2
    results: dict[str, list[dict]] = {}
    for app in apps:
        rows: list[dict] = []
        for e_cores in range(0, n_e + 1, e_step):
            for p_ht in range(0, n_p_ht + 1, ht_step):
                if e_cores == 0 and p_ht == 0:
                    continue
                erv = layout.make(P2=p_ht // 2, P1=p_ht % 2, E=e_cores)
                mp = measure_full_run(
                    lambda app=app: resolve_model(app), plat, erv
                )
                rows.append(
                    {
                        "e_cores": e_cores,
                        "p_hyperthreads": p_ht,
                        "time_s": mp.exec_time_s,
                        "energy_j": mp.energy_j,
                        "p_cores": math.ceil(p_ht / 2),
                    }
                )
        objectives = np.array(
            [
                [r["time_s"], r["energy_j"], r["p_cores"], r["e_cores"]]
                for r in rows
            ]
        )
        front = set(pareto_front_indices(objectives))
        for i, row in enumerate(rows):
            row["pareto"] = i in front
        results[app] = rows
    return results


# -- Fig. 5: regression models ----------------------------------------------------------


FIG5_APPS: list[str] = [
    "bt.C", "cg.C", "ep.C", "ft.C", "is.C", "lu.C", "mg.C", "sp.C", "ua.C",
    "binpack", "fractal", "parallel-preorder", "pi", "primes", "seismic",
]

FIG5_MODELS = ("poly1", "poly2", "poly3", "nn", "svm")


def fig5_regression(
    apps: list[str] | None = None,
    models: tuple[str, ...] = FIG5_MODELS,
    train_sizes: tuple[int, ...] = (5, 10, 15, 20, 30, 40, 60),
    n_seeds: int = 10,
    grid_points: int = 120,
    probe_s: float = 0.5,
) -> list[dict]:
    """Model-accuracy comparison over pre-measured application data.

    Returns rows keyed by (model, train_size) with mean MAPE for IPS and
    power, mean IGD, and the mean common-Pareto-point ratio, averaged over
    applications and random training subsets (10 seeds in the paper).
    """
    apps = list(apps) if apps is not None else list(FIG5_APPS)
    plat = make_platform("intel")
    layout = ErvLayout(plat)
    grid = enumerate_erv_grid(layout, max_points=grid_points)

    datasets = {}
    for app in apps:
        result = explore_application(
            lambda app=app: resolve_model(app), plat, grid=grid, probe_s=probe_s
        )
        x = np.array([mp.erv.as_array() for mp in result.points])
        y_u = np.array([mp.utility for mp in result.points])
        y_p = np.array([mp.power_w for mp in result.points])
        ref_objectives = np.column_stack([-y_u, y_p, x.sum(axis=1, keepdims=True)])
        ref_front = pareto_front_indices(ref_objectives)
        datasets[app] = (x, y_u, y_p, ref_objectives, ref_front)

    rows = []
    for model_name in models:
        for size in train_sizes:
            metrics = {"mape_ips": [], "mape_power": [], "igd": [], "common": []}
            for app in apps:
                x, y_u, y_p, ref_obj, ref_front = datasets[app]
                if size >= len(x):
                    continue
                for seed in range(n_seeds):
                    rng = np.random.default_rng(_stable_seed(app, model_name, size, seed))
                    idx = rng.choice(len(x), size=size, replace=False)
                    try:
                        mu = make_model(model_name, seed=seed).fit(x[idx], y_u[idx])
                        mp_ = make_model(model_name, seed=seed).fit(x[idx], y_p[idx])
                    except np.linalg.LinAlgError:
                        continue
                    pred_u = mu.predict(x)
                    pred_p = mp_.predict(x)
                    metrics["mape_ips"].append(mape(y_u, pred_u))
                    metrics["mape_power"].append(mape(y_p, pred_p))
                    pred_obj = np.column_stack(
                        [-pred_u, pred_p, x.sum(axis=1, keepdims=True)]
                    )
                    pred_front = pareto_front_indices(pred_obj)
                    metrics["igd"].append(
                        igd(ref_obj[ref_front], pred_obj[pred_front])
                    )
                    metrics["common"].append(
                        common_point_ratio(ref_front, pred_front)
                    )
            if not metrics["mape_ips"]:
                continue
            rows.append(
                {
                    "model": model_name,
                    "train_size": size,
                    "mape_ips": float(np.mean(metrics["mape_ips"])),
                    "mape_power": float(np.mean(metrics["mape_power"])),
                    "igd": float(np.mean(metrics["igd"])),
                    "common_ratio": float(np.mean(metrics["common"])),
                }
            )
    return rows


# -- Fig. 6 / Fig. 7: improvement factors -------------------------------------------------


@dataclass
class PolicyComparison:
    """Improvement factors of several policies over a baseline."""

    baseline: str
    rows: list[dict] = field(default_factory=list)

    def geomeans(self, kind: str | None = None) -> dict[tuple[str, str], dict]:
        """Geometric means per (policy, kind): time and energy factors."""
        out: dict[tuple[str, str], dict] = {}
        groups: dict[tuple[str, str], list[dict]] = {}
        for row in self.rows:
            if kind is not None and row["kind"] != kind:
                continue
            groups.setdefault((row["policy"], row["kind"]), []).append(row)
        for key, rows in groups.items():
            out[key] = {
                "time_factor": geomean([r["time_factor"] for r in rows]),
                "energy_factor": geomean([r["energy_factor"] for r in rows]),
                "n": len(rows),
            }
        return out


def _compare_policies(
    scenarios: list[list[str]],
    kind: str,
    platform: str,
    baseline: str,
    policies: tuple[str, ...],
    rounds: int,
    seed: int,
    offline_apps: set[str],
    manager_config_factory=None,
    governor: str | None = None,
    dse_points: int = 120,
    dse_probe_s: float = 0.6,
) -> list[dict]:
    rows = []
    offline_tables = None
    if any(p in ("harp-offline",) for p in policies) and offline_apps:
        offline_tables = offline_points_for(
            sorted(offline_apps), platform=platform,
            probe_s=dse_probe_s, max_points=dse_points,
        )
    for apps in scenarios:
        base = run_scenario(
            apps, platform=platform, policy=baseline, rounds=rounds,
            seed=seed, governor=governor,
        )
        for policy in policies:
            config = manager_config_factory() if manager_config_factory else None
            result = run_scenario(
                apps,
                platform=platform,
                policy=policy,
                rounds=rounds,
                seed=seed,
                governor=governor,
                offline_tables=offline_tables,
                manager_config=config,
            )
            rows.append(
                {
                    "scenario": "+".join(apps),
                    "kind": kind,
                    "policy": policy,
                    "baseline_makespan_s": base.makespan_s,
                    "baseline_energy_j": base.energy_j,
                    "makespan_s": result.makespan_s,
                    "energy_j": result.energy_j,
                    "time_factor": base.makespan_s / result.makespan_s,
                    "energy_factor": base.energy_j / result.energy_j,
                    "warmup_rounds": result.warmup_rounds,
                }
            )
    return rows


def fig6_raptor_lake(
    single_apps: list[str] | None = None,
    multi_scenarios: list[list[str]] | None = None,
    policies: tuple[str, ...] = ("itd", "harp", "harp-offline", "harp-noscaling"),
    rounds: int = 2,
    seed: int = 0,
    dse_points: int = 120,
    dse_probe_s: float = 0.6,
) -> PolicyComparison:
    """Fig. 6: improvement factors over CFS on the Intel Raptor Lake."""
    singles = single_apps if single_apps is not None else INTEL_SINGLE_APPS
    multis = multi_scenarios if multi_scenarios is not None else INTEL_MULTI_SCENARIOS
    offline_apps = set(singles) | {a for sc in multis for a in sc}
    comparison = PolicyComparison(baseline="cfs")
    comparison.rows += _compare_policies(
        [[a] for a in singles], "single", "intel", "cfs", policies,
        rounds, seed, offline_apps,
        dse_points=dse_points, dse_probe_s=dse_probe_s,
    )
    comparison.rows += _compare_policies(
        multis, "multi", "intel", "cfs", policies, rounds, seed, offline_apps,
        dse_points=dse_points, dse_probe_s=dse_probe_s,
    )
    return comparison


def fig7_odroid(
    single_apps: list[str] | None = None,
    multi_scenarios: list[list[str]] | None = None,
    rounds: int = 2,
    seed: int = 0,
    dse_points: int = 120,
    dse_probe_s: float = 0.6,
) -> PolicyComparison:
    """Fig. 7: HARP (Offline) vs the Energy-Aware Scheduler on the Odroid.

    As in the paper, only the offline variant runs on this platform (its
    PMU cannot monitor both clusters simultaneously).
    """
    singles = single_apps if single_apps is not None else ODROID_SINGLE_APPS
    multis = multi_scenarios if multi_scenarios is not None else ODROID_MULTI_SCENARIOS
    offline_apps = set(singles) | {a for sc in multis for a in sc}
    comparison = PolicyComparison(baseline="eas")
    comparison.rows += _compare_policies(
        [[a] for a in singles], "single", "odroid", "eas", ("harp-offline",),
        rounds, seed, offline_apps,
        dse_points=dse_points, dse_probe_s=dse_probe_s,
    )
    comparison.rows += _compare_policies(
        multis, "multi", "odroid", "eas", ("harp-offline",), rounds, seed,
        offline_apps,
        dse_points=dse_points, dse_probe_s=dse_probe_s,
    )
    return comparison


# -- Fig. 8: learning behaviour --------------------------------------------------------


def fig8_learning(
    scenarios: list[list[str]] | None = None,
    snapshot_interval_s: float = 5.0,
    max_learning_s: float = 120.0,
    rounds: int = 1,
    seed: int = 0,
) -> dict:
    """Learning-phase analysis: snapshot tables every 5 s, evaluate each.

    For every snapshot the scenario is re-run with HARP driven purely by
    the snapshot's operating points (no further exploration) and compared
    against CFS, yielding the improvement-factor trajectory of Fig. 8;
    time-to-stable statistics reproduce the §6.5 numbers.
    """
    if scenarios is None:
        scenarios = [["ep.C"], ["mg.C"], ["is.C"], ["ep.C", "mg.C"],
                     ["ep.C", "mg.C", "ft.C", "cg.C"]]
    results = {"scenarios": [], "stable_times": {"single": [], "multi": []}}
    for apps in scenarios:
        kind = "single" if len(apps) == 1 else "multi"
        plat = make_platform("intel")
        world = World(
            plat,
            PinnedScheduler(),
            governor=make_governor("powersave", plat),
            seed=seed,
        )
        manager = HarpManager(world, ManagerConfig())
        snapshots: list[dict] = []
        next_snap = [snapshot_interval_s]

        def snapshotter(w, manager=manager, snapshots=snapshots, next_snap=next_snap):
            if w.time_s >= next_snap[0]:
                next_snap[0] += snapshot_interval_s
                tables = {
                    name: [p.to_wire() for p in table.measured_points()]
                    for name, table in manager.table_store.items()
                }
                snapshots.append(
                    {
                        "t_s": w.time_s,
                        "tables": tables,
                        "all_stable": bool(manager.table_store)
                        and all(
                            t.stage.value == "stable"
                            for t in manager.table_store.values()
                        ),
                    }
                )

        world.on_tick.append(snapshotter)
        while world.time_s < max_learning_s:
            models = [resolve_model(a) for a in apps]
            _run_one_round(world, models, managed=True)
            if all(
                name in manager.table_store
                and manager.table_store[name].stage.value == "stable"
                for name in apps
            ) and world.time_s >= next_snap[0] - snapshot_interval_s:
                break

        base = run_scenario(apps, policy="cfs", rounds=rounds, seed=seed)
        trajectory = []
        for snap in snapshots:
            usable = {
                name: pts for name, pts in snap["tables"].items() if len(pts) >= 2
            }
            if set(apps) - set(usable):
                continue
            result = run_scenario(
                apps,
                policy="harp-offline",
                rounds=rounds,
                seed=seed,
                offline_tables=usable,
            )
            trajectory.append(
                {
                    "t_s": snap["t_s"],
                    "stable": snap["all_stable"],
                    "time_factor": base.makespan_s / result.makespan_s,
                    "energy_factor": base.energy_j / result.energy_j,
                }
            )
        stable_times = dict(manager.stable_at_s)
        if stable_times and len(stable_times) == len(set(apps)):
            results["stable_times"][kind].append(max(stable_times.values()))
        results["scenarios"].append(
            {
                "scenario": "+".join(apps),
                "kind": kind,
                "trajectory": trajectory,
                "stable_at_s": stable_times,
            }
        )
    summary = {}
    for kind, values in results["stable_times"].items():
        if values:
            mean, std = mean_and_std(values)
            summary[kind] = {"mean_s": mean, "std_s": std, "n": len(values)}
    results["summary"] = summary
    return results


# -- §6.3.3: governor influence ---------------------------------------------------------


def governor_comparison(
    scenarios: list[list[str]] | None = None,
    policies: tuple[str, ...] = ("harp", "harp-offline"),
    rounds: int = 2,
    seed: int = 0,
) -> dict[str, PolicyComparison]:
    """HARP improvement factors under powersave vs performance governors."""
    if scenarios is None:
        scenarios = [["ep.C"], ["mg.C"], ["ft.C"], ["ep.C", "mg.C"],
                     ["bt.C", "cg.C"]]
    offline_apps = {a for sc in scenarios for a in sc}
    out = {}
    for governor in ("powersave", "performance"):
        comparison = PolicyComparison(baseline="cfs")
        comparison.rows = _compare_policies(
            scenarios, "all", "intel", "cfs", policies, rounds, seed,
            offline_apps, governor=governor,
        )
        out[governor] = comparison
    return out


# -- §6.6: overhead -----------------------------------------------------------------------


def overhead_experiment(
    scenarios: list[list[str]] | None = None,
    rounds: int = 3,
    seed: int = 0,
) -> list[dict]:
    """HARP's management overhead with activation messages ignored.

    Runs every scenario twice: plain CFS without a manager, and with the
    full HARP stack (monitoring, exploration, communication, utility
    polls) whose activations libharp drops — applications stay unadapted
    and CFS-scheduled, so any makespan delta is pure overhead.
    """
    if scenarios is None:
        scenarios = [["ep.C"], ["mg.C"], ["ft.C"],
                     ["ep.C", "mg.C"], ["ft.C", "cg.C", "is.C"],
                     ["bt.C", "is.C", "lu.C", "sp.C", "ua.C"]]
    rows = []
    for apps in scenarios:
        base = run_scenario(apps, policy="cfs", rounds=rounds, seed=seed)

        def config() -> ManagerConfig:
            return ManagerConfig(adaptation=AdaptationMode.IGNORE)

        managed = run_scenario(
            apps,
            policy="harp",
            rounds=rounds,
            seed=seed,
            warmup_max_rounds=0,
            manager_config=config(),
        )
        rows.append(
            {
                "scenario": "+".join(apps),
                "kind": "single" if len(apps) == 1 else "multi",
                "cfs_makespan_s": base.makespan_s,
                "harp_makespan_s": managed.makespan_s,
                "overhead_pct": 100.0 * (managed.makespan_s / base.makespan_s - 1.0),
            }
        )
    return rows


# -- §5.1: energy-attribution validation ------------------------------------------------


def energy_attribution(
    scenarios: list[list[str]] | None = None,
    seed: int = 0,
    interval_s: float = 0.1,
) -> dict:
    """Validate EnergAt-style attribution against ground-truth energy.

    Runs multi-application scenarios under CFS while the attributor splits
    the (noisy) package energy between applications per Eq. 3; the engine's
    exact dynamic-energy bookkeeping provides the reference.  Reports the
    overall MAPE (paper: 8.76 %).
    """
    if scenarios is None:
        scenarios = [["ep.C", "mg.C"], ["ft.C", "cg.C"], ["is.C", "lu.C"],
                     ["ep.C", "ft.C", "sp.C"]]
    errors = []
    rows = []
    for apps in scenarios:
        plat = make_platform("intel")
        world = World(
            plat, CfsScheduler(),
            governor=make_governor("powersave", plat), seed=seed,
        )
        attributor = EnergyAttributor(plat)
        processes = [world.spawn(resolve_model(a)) for a in apps]
        attributed = {p.pid: 0.0 for p in processes}
        last_energy = world.total_energy_j()
        last_busy = dict(world.busy_time_by_type_s)
        last_cpu = {p.pid: dict(p.cpu_time_by_type) for p in processes}
        next_t = interval_s
        while world.running_processes():
            world.step()
            if world.time_s + 1e-9 < next_t:
                continue
            next_t += interval_s
            energy = world.total_energy_j()
            busy = dict(world.busy_time_by_type_s)
            cpu_delta = {}
            for p in processes:
                cur = dict(p.cpu_time_by_type)
                cpu_delta[p.pid] = {
                    k: cur.get(k, 0.0) - last_cpu[p.pid].get(k, 0.0)
                    for k in set(cur) | set(last_cpu[p.pid])
                }
                last_cpu[p.pid] = cur
            samples = attributor.attribute(
                energy - last_energy,
                interval_s,
                {k: busy[k] - last_busy.get(k, 0.0) for k in busy},
                cpu_delta,
            )
            for pid, sample in samples.items():
                attributed[pid] += sample.energy_j
            last_energy = energy
            last_busy = busy
        for p in processes:
            true = p.energy_true_j
            est = attributed[p.pid]
            if true > 0:
                err = abs(est - true) / true * 100.0
                errors.append(err)
                rows.append(
                    {
                        "scenario": "+".join(apps),
                        "app": p.model.name,
                        "true_j": true,
                        "attributed_j": est,
                        "ape_pct": err,
                    }
                )
    return {"rows": rows, "mape_pct": float(np.mean(errors)) if errors else None}
