"""Plain-text report rendering for experiment results.

Small, dependency-free renderers used by the CLI and the examples: aligned
tables and horizontal bar charts for improvement factors, so quick runs
read like the paper's figures without a plotting stack.
"""

from __future__ import annotations


def render_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Align a list of dictionaries into a text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {
        c: max(len(c), *(len(fmt(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(fmt(r.get(c, "")).ljust(widths[c]) for c in columns)
        for r in rows
    ]
    return "\n".join([header, separator, *body])


def render_factor_bars(
    rows: list[dict],
    label_key: str,
    value_key: str,
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Horizontal bars for improvement factors, marking the 1.0 baseline.

    Factors above the reference render as ``#`` past the baseline mark,
    factors below as a shortened bar — mirroring how Fig. 6/7 read.
    """
    if not rows:
        return "(no rows)"
    max_value = max(max(r[value_key] for r in rows), reference * 1.25)
    label_width = max(len(str(r[label_key])) for r in rows)
    ref_col = int(width * reference / max_value)
    lines = []
    for r in rows:
        value = r[value_key]
        filled = max(0, min(width, int(round(width * value / max_value))))
        bar = list("#" * filled + " " * (width - filled))
        if 0 <= ref_col < width:
            bar[ref_col] = "|" if bar[ref_col] == " " else "+"
        lines.append(
            f"{str(r[label_key]).rjust(label_width)} "
            f"[{''.join(bar)}] {value:.2f}x"
        )
    return "\n".join(lines)


def render_comparison(comparison, value_key: str = "energy_factor") -> str:
    """Render a PolicyComparison (Fig. 6/7 data) as grouped bar charts."""
    sections = []
    kinds = sorted({r["kind"] for r in comparison.rows})
    for kind in kinds:
        rows = [
            {
                "label": f"{r['scenario']} ({r['policy']})",
                value_key: r[value_key],
            }
            for r in comparison.rows
            if r["kind"] == kind
        ]
        sections.append(f"== {kind} ==")
        sections.append(render_factor_bars(rows, "label", value_key))
    return "\n".join(sections)
