"""Evaluation utilities: metrics, scenario runners, and the per-figure
experiment harness consumed by ``benchmarks/``."""

from repro.analysis.metrics import (
    geomean,
    improvement_factor,
    mape,
    mean_and_std,
    summarize_factors,
)
from repro.analysis.scenarios import (
    INTEL_MULTI_SCENARIOS,
    INTEL_SINGLE_APPS,
    ODROID_MULTI_SCENARIOS,
    ODROID_SINGLE_APPS,
    RoundResult,
    ScenarioResult,
    make_platform,
    resolve_model,
    run_scenario,
)
from repro.analysis.trace import TraceSample, WorldTracer

__all__ = [
    "geomean",
    "improvement_factor",
    "mape",
    "mean_and_std",
    "summarize_factors",
    "INTEL_MULTI_SCENARIOS",
    "INTEL_SINGLE_APPS",
    "ODROID_MULTI_SCENARIOS",
    "ODROID_SINGLE_APPS",
    "RoundResult",
    "ScenarioResult",
    "make_platform",
    "resolve_model",
    "run_scenario",
    "TraceSample",
    "WorldTracer",
]
