"""Evaluation metrics shared by the experiment harness."""

from __future__ import annotations

import math

from repro.core.cost import geomean, improvement_factor
from repro.core.regression import mape

__all__ = [
    "geomean",
    "improvement_factor",
    "mape",
    "mean_and_std",
    "summarize_factors",
]


def mean_and_std(values: list[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    if not values:
        raise ValueError("empty sequence")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


def summarize_factors(rows: list[dict], key: str) -> float:
    """Geometric mean of one improvement-factor column over result rows."""
    return geomean([row[key] for row in rows])
