"""Application behaviour models.

The ground truth of the simulation: how much useful work an application
extracts from a set of thread slots, how many instructions it emits while
doing so, and how busy it keeps its cores.  The HARP resource manager
never reads these models — it must discover their behaviour through the
same noisy IPS/power observations the paper's implementation gets from
perf and RAPL.

The composite model captures the effects the paper's evaluation hinges on:

* **Amdahl serial fraction** — the serial part runs on the fastest thread.
* **Memory-bandwidth ceiling** — memory-bound applications (mg, cg, ft)
  stop scaling once the aggregate rate hits the cap, so extra P-cores add
  power without performance (Fig. 1b).
* **Static vs dynamic load balancing** — statically partitioned OpenMP
  loops are gated by the slowest thread, so mixed P/E allocations stall
  P-cores (§2.2); dynamically balanced workloads use whatever they get.
* **Busy-wait spinning** — spinning threads inflate IPS without utility,
  reproducing lu's miss-selection under a generic utility metric (§6.3.1).
* **Oversubscription penalty** — running more threads than hardware
  threads costs context switches and lock-holder preemption (§2.2).
* **Synchronization contention** — throughput collapses beyond a thread
  count when all workers hammer one queue (binpack's 6.9× outlier).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.platform.topology import Platform
from repro.sim.engine import AppPerf, ThreadSlot
from repro.sim.process import SimProcess


class AdaptivityType(enum.Enum):
    """How an application can adapt to allocations (§4.1.3)."""

    STATIC = "static"
    SCALABLE = "scalable"
    CUSTOM = "custom"


class Balancing(enum.Enum):
    """Work-distribution discipline across worker threads."""

    DYNAMIC = "dynamic"
    STATIC = "static"


@dataclass
class ApplicationModel:
    """Composite analytic model of one application.

    Attributes:
        name: benchmark name (e.g. ``"ep.C"``).
        adaptivity: static / scalable / custom classification.
        total_work: abstract work units to completion.
        serial_fraction: Amdahl serial part, in [0, 1).
        balancing: static partitioning (slowest thread gates) or dynamic.
        type_efficiency: per-core-type efficiency multiplier on top of the
            platform's base speeds (instruction-mix effects).
        mem_bw_cap: aggregate work/s ceiling imposed by memory bandwidth
            (None = compute-bound).
        oversub_coeff: strength of the time-sharing penalty when threads
            outnumber their hardware threads (context switches, cache
            thrash, and lock-holder preemption; 0.8 means 2× oversubscription
            costs ~44 % of throughput).
        contention_threshold: thread count beyond which synchronization
            contention collapses throughput (None = no contention).
        contention_exponent: how hard throughput collapses past the
            threshold: rate *= (threshold / n) ** exponent.
        spin_ips_rate: instructions/s a stalled-but-spinning thread emits
            per unit of base speed (0 = threads sleep when idle).
        ips_per_work: useful instructions emitted per work unit.
        power_intensity: multiplier on the core's active power while
            running this application (instruction-mix effect: vectorized
            kernels draw more than stall-heavy ones).  The uniform γ
            coefficients of the attribution model (Eq. 3) cannot see this,
            which is the realistic error source behind the paper's 8.76 %
            attribution MAPE.
        runtime_lib: which runtime libharp would hook ("openmp", "tbb",
            "tensorflow", "kpn", or None for plain pthreads).
        fixed_nthreads: thread count of non-scalable applications.
    """

    name: str
    adaptivity: AdaptivityType = AdaptivityType.SCALABLE
    total_work: float = 100.0
    serial_fraction: float = 0.01
    balancing: Balancing = Balancing.DYNAMIC
    type_efficiency: dict[str, float] = field(default_factory=dict)
    mem_bw_cap: float | None = None
    oversub_coeff: float = 0.8
    contention_threshold: int | None = None
    contention_exponent: float = 1.0
    contention_blocks: bool = True
    spin_ips_rate: float = 0.0
    ips_per_work: float = 1.0e9
    power_intensity: float = 1.0
    runtime_lib: str | None = "openmp"
    fixed_nthreads: int | None = None
    provides_utility: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if self.total_work <= 0:
            raise ValueError("total_work must be > 0")

    # -- scheduling metadata ---------------------------------------------------

    def default_nthreads(self, platform: Platform) -> int:
        """Thread count at launch: OMP_NUM_THREADS-style nproc default."""
        if self.fixed_nthreads is not None:
            return self.fixed_nthreads
        return platform.n_hw_threads

    def efficiency(self, core_type: str) -> float:
        return self.type_efficiency.get(core_type, 1.0)

    def thread_demand(self, process: SimProcess) -> float:
        """CPU demand per thread in [0, 1] for proportional time-sharing.

        Normal worker threads want a full slice; daemon-style processes
        override this with their actual busy fraction.
        """
        return 1.0

    def steady_work_horizon(self, process: SimProcess) -> float | None:
        """Work units this model can absorb with behaviour guaranteed fixed.

        The event engine's busy-stretch fast-forward evaluates ``perf``
        once and replays its result over many ticks; that is only sound
        while the model's response is a pure function of the (unchanged)
        slots.  The contract:

        * ``None`` — ``perf`` and ``thread_demand`` depend only on the
          slots and on state that changes exclusively at event boundaries
          (knobs, activity flags).  The composite model and its subclasses
          qualify: progress feeds back into nothing.
        * a positive float — behaviour is slot-pure until ``work_done``
          advances by this much (e.g. a phase boundary); leaps stop short
          of it.
        * ``0.0`` — ``perf`` mutates model state every call (e.g. the RM
          daemon burning its pending busy time); the engine never leaps
          while such a process holds a slot.
        """
        return None

    def itd_class_for_thread(self, tidx: int) -> int:
        """Synthetic ITD class: 0 = generic compute, 1 = memory-bound.

        Only strongly bandwidth-bound kernels read as memory-bound to the
        classifier; mildly capped ones still present a compute-heavy
        instruction mix.
        """
        return 1 if (self.mem_bw_cap is not None and self.mem_bw_cap < 8.0) else 0

    def itd_perf_ratio(self, itd_class: int) -> float:
        """P-vs-E performance ratio the ITD classifier would report.

        Memory-bound classes gain little from P-cores; compute classes see
        the full architectural speed gap.
        """
        if itd_class == 1:
            return 1.1
        return 1.8

    # -- the behavioural core --------------------------------------------------

    def perf(self, slots: list[ThreadSlot], process: SimProcess) -> AppPerf:
        """Convert delivered thread slots into progress, activity and IPS."""
        if not slots:
            return AppPerf(0.0, [], 0.0)
        speeds = [
            slot.speed * self.efficiency(slot.core_type) for slot in slots
        ]
        n = len(speeds)
        fastest = max(speeds)
        slowest = min(speeds)
        if fastest <= 0:
            return AppPerf(0.0, [0.0] * n, 0.0)

        if self.balancing is Balancing.STATIC:
            parallel_rate = n * slowest
        else:
            parallel_rate = sum(speeds)

        if self.mem_bw_cap is not None:
            parallel_rate = min(parallel_rate, self.mem_bw_cap)

        # Amdahl composition of the serial and parallel phases.
        rate = 1.0 / (
            self.serial_fraction / fastest
            + (1.0 - self.serial_fraction) / max(parallel_rate, 1e-12)
        )

        # Oversubscription: the time-sharing penalty (context switches,
        # cache thrash, lock-holder preemption) applies whenever this
        # application's threads do not own their hardware threads outright
        # — whether crowded out by its own surplus threads or by other
        # applications.  The pressure ratio compares thread count against
        # the total CPU share actually delivered.
        total_share = sum(slot.share for slot in slots)
        if total_share > 0 and n > total_share * 1.001:
            ratio = n / total_share
            rate *= 1.0 / (1.0 + self.oversub_coeff * (ratio - 1.0))

        # Synchronization contention (shared-queue collapse).
        contention_factor = 1.0
        if self.contention_threshold is not None and n > self.contention_threshold:
            contention_factor = (
                self.contention_threshold / n
            ) ** self.contention_exponent
            rate *= contention_factor

        activities = self._activities(speeds, slowest)
        if contention_factor < 1.0 and self.contention_blocks:
            # Contended threads sleep on the shared lock rather than spin,
            # so CPU activity (and thus power) collapses with throughput.
            activities = [a * contention_factor for a in activities]
        ips = rate * self.ips_per_work
        if self.spin_ips_rate > 0 and self.balancing is Balancing.STATIC:
            # Threads that finished their static chunk spin at the barrier,
            # emitting instructions that do no useful work.
            for speed, activity in zip(speeds, self._wait_fractions(speeds, slowest)):
                ips += self.spin_ips_rate * speed * activity
        return AppPerf(rate, activities, ips)

    def _wait_fractions(self, speeds: list[float], slowest: float) -> list[float]:
        """Per-thread fraction of the tick spent waiting at the barrier."""
        return [
            0.0 if speed <= 0 else max(0.0, 1.0 - slowest / speed)
            for speed in speeds
        ]

    def _activities(self, speeds: list[float], slowest: float) -> list[float]:
        """Per-thread on-CPU fraction.

        Dynamically balanced workloads keep every thread busy.  Statically
        partitioned ones either spin (on-CPU, wasting energy) or sleep at
        the barrier depending on the runtime's wait policy.
        """
        if self.balancing is Balancing.DYNAMIC:
            return [1.0] * len(speeds)
        waits = self._wait_fractions(speeds, slowest)
        if self.spin_ips_rate > 0:
            # Spin-wait: cores stay busy through the imbalance.
            return [1.0] * len(speeds)
        return [1.0 - w for w in waits]
