"""Kahn Process Network applications (§6.2, Odroid platform).

The paper evaluates two embedded KPN applications through HARP's *custom*
extension path: ``mandelbrot`` (Mandelbrot set computation) and ``lms``
(Leighton-Micali hash-based signatures, RFC 8554).  Each exists in two
variants:

* **static** — a fixed process-network topology; HARP can only pick the
  core set the network runs on;
* **adaptive** — data-parallel regions (Khasanov et al., PARMA-DITAM'18)
  whose replica counts are adaptivity knobs, letting libharp re-shape the
  network to the allocation at runtime.

The model captures pipeline semantics: the network's throughput is gated
by its slowest stage (stage work weight divided by the compute speed of
the stage's replicas), and upstream/downstream processes block on full or
empty channels, lowering their activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.apps.base import AdaptivityType, ApplicationModel
from repro.sim.engine import AppPerf, ThreadSlot
from repro.sim.process import SimProcess

REPLICAS_KNOB = "replicas"


@dataclass(frozen=True)
class KpnStage:
    """One process (stage) of the network.

    Attributes:
        name: stage identifier.
        weight: work units this stage must process per application work
            unit (its compute demand relative to the whole).
        parallel: whether the stage is a data-parallel region whose
            replica count is an adaptivity knob.
        replicas: default replica count.
    """

    name: str
    weight: float
    parallel: bool = False
    replicas: int = 1


@dataclass
class KpnApplicationModel(ApplicationModel):
    """Pipeline-of-stages behaviour model for KPN applications."""

    stages: list[KpnStage] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.stages:
            raise ValueError("KPN application needs at least one stage")
        self.runtime_lib = "kpn"

    # -- topology ----------------------------------------------------------------

    def stage_replicas(self, process: SimProcess | None = None) -> list[int]:
        """Replica count per stage, honouring the replicas knob if set."""
        overrides = {}
        if process is not None:
            overrides = process.knobs.get(REPLICAS_KNOB, {})
        counts = []
        for stage in self.stages:
            if stage.parallel and stage.name in overrides:
                counts.append(max(1, int(overrides[stage.name])))
            else:
                counts.append(stage.replicas)
        return counts

    def topology_size(self, process: SimProcess | None = None) -> int:
        return sum(self.stage_replicas(process))

    def default_nthreads(self, platform) -> int:
        return self.topology_size()

    def replicas_knob_for(self, total_threads: int) -> dict:
        """Knob payload spreading ``total_threads`` over parallel stages.

        Serial stages keep one replica each; the remaining budget is
        divided across parallel regions proportionally to their weight.
        """
        serial = sum(1 for s in self.stages if not s.parallel)
        parallel_stages = [s for s in self.stages if s.parallel]
        if not parallel_stages:
            return {}
        budget = max(len(parallel_stages), total_threads - serial)
        total_weight = sum(s.weight for s in parallel_stages)
        overrides = {}
        assigned = 0
        for stage in parallel_stages[:-1]:
            count = max(1, round(budget * stage.weight / total_weight))
            overrides[stage.name] = count
            assigned += count
        overrides[parallel_stages[-1].name] = max(1, budget - assigned)
        return {REPLICAS_KNOB: overrides}

    # -- behaviour -----------------------------------------------------------------

    def perf(self, slots: list[ThreadSlot], process: SimProcess) -> AppPerf:
        if not slots:
            return AppPerf(0.0, [], 0.0)
        replicas = self.stage_replicas(process)
        speeds = [
            slot.speed * self.efficiency(slot.core_type) for slot in slots
        ]

        # Slot-to-stage assignment.  The *custom* libharp KPN extension
        # maps bottleneck processes (highest weight per replica, e.g. a
        # serial merkle stage) onto the fastest allocated cores — the
        # fine-grained adaptation of §4.1.3.  It is only active for
        # adaptive variants running under HARP; static topologies and
        # unmanaged executions bind threads to stages in plain order.
        adaptive_mapping = (
            self.adaptivity is AdaptivityType.CUSTOM and process.managed
        )
        instances = [
            (stage_idx, instance)
            for stage_idx, count in enumerate(replicas)
            for instance in range(count)
        ]
        stage_slots: list[list[int]] = [[] for _ in self.stages]
        if adaptive_mapping:
            order = sorted(
                instances,
                key=lambda si: -self.stages[si[0]].weight
                / max(1, replicas[si[0]]),
            )
            slot_order = sorted(range(len(speeds)), key=lambda i: -speeds[i])
        else:
            order = instances
            slot_order = list(range(len(speeds)))
        for (stage_idx, _), slot_idx in zip(order, slot_order):
            stage_slots[stage_idx].append(slot_idx)
        stage_speed = [
            sum(speeds[i] for i in indices) for indices in stage_slots
        ]

        rate = float("inf")
        for stage, total in zip(self.stages, stage_speed):
            if stage.weight <= 0:
                continue
            if total <= 0:
                rate = 0.0
                break
            rate = min(rate, total / stage.weight)
        if rate == float("inf"):
            rate = 0.0
        if self.mem_bw_cap is not None:
            rate = min(rate, self.mem_bw_cap)

        activities = [0.0] * len(speeds)
        for stage, indices, total in zip(self.stages, stage_slots, stage_speed):
            if total <= 0:
                continue
            # Each replica is busy for the fraction of its capacity the
            # pipeline actually pulls through this stage.
            demand = rate * stage.weight
            for i in indices:
                activities[i] = min(1.0, demand / total)
        ips = rate * self.ips_per_work
        return AppPerf(rate, activities, ips)


_MANDELBROT_STAGES = [
    KpnStage("source", weight=0.02),
    KpnStage("compute", weight=1.0, parallel=True, replicas=4),
    KpnStage("sink", weight=0.02),
]

_LMS_STAGES = [
    KpnStage("prepare", weight=0.08),
    KpnStage("ots-sign", weight=1.0, parallel=True, replicas=4),
    KpnStage("merkle", weight=0.22),
]


def _kpn_base(name: str, stages: list[KpnStage], total_work: float) -> KpnApplicationModel:
    return KpnApplicationModel(
        name=name,
        adaptivity=AdaptivityType.CUSTOM,
        total_work=total_work,
        serial_fraction=0.0,
        ips_per_work=1.0e9,
        stages=list(stages),
    )


def kpn_model(name: str) -> KpnApplicationModel:
    """KPN application factory.

    Names: ``mandelbrot``, ``lms`` (adaptive variants) and
    ``mandelbrot-static``, ``lms-static`` (fixed topology, §6.2).
    """
    if name == "mandelbrot":
        return _kpn_base("mandelbrot", _MANDELBROT_STAGES, total_work=40.0)
    if name == "lms":
        return _kpn_base("lms", _LMS_STAGES, total_work=32.0)
    if name == "mandelbrot-static":
        model = _kpn_base("mandelbrot-static", _MANDELBROT_STAGES, total_work=40.0)
        model.adaptivity = AdaptivityType.STATIC
        return model
    if name == "lms-static":
        model = _kpn_base("lms-static", _LMS_STAGES, total_work=32.0)
        model.adaptivity = AdaptivityType.STATIC
        return model
    raise KeyError(f"unknown KPN application {name!r}")


def kpn_suite() -> list[str]:
    """All four KPN variants of the Odroid evaluation."""
    return ["lms", "lms-static", "mandelbrot", "mandelbrot-static"]
