"""Intel Threading Building Blocks benchmarks (§6.2, Intel platform only).

From the official TBB repository the paper selects binpack, fractal,
parallel-preorder, pi, primes, and seismic "as they cover a wide spectrum
of the building blocks of the framework".  The decisive behaviours:

* **binpack** — all worker threads contend on a single shared input queue;
  with the default 32 threads the baseline collapses while HARP scales the
  application down past the bottleneck, the paper's 6.9× outlier.
  Blocked workers sleep on the queue lock, so the baseline's power stays
  low and the energy gain (1.29×) is far smaller than the speedup.
* **primes** — very short-running, exposing HARP's startup/communication
  overhead (its energy degrades under HARP in the paper).
* **fractal / pi** — dynamically balanced compute kernels that scale well.
* **parallel-preorder** — graph traversal with a visible serial component
  and oversubscription sensitivity.
* **seismic** — wave propagation with a moderate bandwidth ceiling.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.base import ApplicationModel, Balancing

_TBB: dict[str, ApplicationModel] = {
    "binpack": ApplicationModel(
        name="binpack",
        power_intensity=0.9,
        runtime_lib="tbb",
        total_work=10.0,
        serial_fraction=0.01,
        balancing=Balancing.DYNAMIC,
        contention_threshold=5,
        contention_exponent=1.0,
        contention_blocks=True,
        ips_per_work=1.0e9,
    ),
    "fractal": ApplicationModel(
        name="fractal",
        power_intensity=1.1,
        runtime_lib="tbb",
        total_work=300.0,
        serial_fraction=0.005,
        balancing=Balancing.DYNAMIC,
        ips_per_work=2.1e9,
    ),
    "parallel-preorder": ApplicationModel(
        name="parallel-preorder",
        power_intensity=0.95,
        runtime_lib="tbb",
        total_work=180.0,
        serial_fraction=0.08,
        balancing=Balancing.DYNAMIC,
        oversub_coeff=0.6,
        mem_bw_cap=12.0,
        ips_per_work=1.3e9,
    ),
    "pi": ApplicationModel(
        name="pi",
        power_intensity=1.12,
        runtime_lib="tbb",
        total_work=260.0,
        serial_fraction=0.001,
        balancing=Balancing.DYNAMIC,
        ips_per_work=2.3e9,
    ),
    "primes": ApplicationModel(
        name="primes",
        power_intensity=1.08,
        runtime_lib="tbb",
        total_work=24.0,
        serial_fraction=0.01,
        balancing=Balancing.DYNAMIC,
        ips_per_work=1.9e9,
    ),
    "seismic": ApplicationModel(
        name="seismic",
        power_intensity=0.9,
        runtime_lib="tbb",
        total_work=200.0,
        serial_fraction=0.02,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=10.0,
        ips_per_work=1.2e9,
    ),
}


def tbb_model(name: str) -> ApplicationModel:
    """A fresh instance of the named TBB benchmark."""
    if name not in _TBB:
        raise KeyError(f"unknown TBB benchmark {name!r}")
    return replace(_TBB[name])


def tbb_suite() -> list[str]:
    """The six TBB benchmarks of the paper's Intel evaluation."""
    return sorted(_TBB)
