"""Workload models: the benchmarks of the paper's evaluation (§6.2).

Each factory returns an :class:`~repro.apps.base.ApplicationModel`
calibrated to reproduce the behaviour the paper reports — scaling shape,
memory-boundedness, contention pathologies, and runtime magnitude — on the
matching simulated platform.
"""

from repro.apps.base import AdaptivityType, ApplicationModel, Balancing
from repro.apps.npb import npb_intel_suite, npb_odroid_suite, npb_model
from repro.apps.tbb import tbb_suite, tbb_model
from repro.apps.tflite import tflite_suite, tflite_model
from repro.apps.kpn import KpnApplicationModel, kpn_suite, kpn_model

__all__ = [
    "AdaptivityType",
    "ApplicationModel",
    "Balancing",
    "npb_intel_suite",
    "npb_odroid_suite",
    "npb_model",
    "tbb_suite",
    "tbb_model",
    "tflite_suite",
    "tflite_model",
    "KpnApplicationModel",
    "kpn_suite",
    "kpn_model",
]
