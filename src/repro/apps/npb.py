"""NAS Parallel Benchmarks (OpenMP), classes A and C.

The paper runs the NPB 3.4.2 OpenMP suite: class C on the Intel Raptor
Lake and class A on the Odroid XU3-E (§6.2).  Parameters encode the
well-known characters of the kernels:

* **ep** — embarrassingly parallel, compute-bound, scales with everything
  (Fig. 1a; its Pareto front favours even P-hyperthread counts because
  both SMT siblings add throughput).
* **mg** — multigrid, memory-bandwidth-bound: more cores add energy but no
  speed; runs best on efficiency cores (Fig. 1b).
* **lu** — pipelined SSOR solver with busy-wait synchronization: static
  partitioning plus barrier spinning inflates IPS on imbalanced
  heterogeneous allocations, which misleads a generic utility metric
  (§6.3.1).
* **is** — integer sort: short-running and bandwidth-heavy, so manager
  startup overhead is visible (§6.4.1).
* **bt / sp / ua / ft / cg** — intermediate compute/memory mixes.

``total_work`` values are calibrated so that baseline (CFS/EAS) makespans
land in the paper's reported magnitude ranges (seconds to about a minute).
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.base import AdaptivityType, ApplicationModel, Balancing

# Class C on the Intel Raptor Lake (full-machine compute rate ≈ 18.7
# work-units/s for a fully parallel efficiency-1.0 workload).
_NPB_C: dict[str, ApplicationModel] = {
    "ep.C": ApplicationModel(
        name="ep.C",
        power_intensity=1.15,
        total_work=45.0,
        serial_fraction=0.002,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=None,
        ips_per_work=2.4e9,
    ),
    "mg.C": ApplicationModel(
        name="mg.C",
        power_intensity=0.8,
        total_work=55.0,
        serial_fraction=0.01,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=6.0,
        ips_per_work=1.1e9,
    ),
    "lu.C": ApplicationModel(
        name="lu.C",
        power_intensity=1.05,
        total_work=260.0,
        serial_fraction=0.03,
        balancing=Balancing.STATIC,
        mem_bw_cap=13.0,
        spin_ips_rate=2.6e9,
        ips_per_work=1.3e9,
    ),
    "bt.C": ApplicationModel(
        name="bt.C",
        power_intensity=1.0,
        total_work=280.0,
        serial_fraction=0.02,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=14.0,
        ips_per_work=1.5e9,
    ),
    "is.C": ApplicationModel(
        name="is.C",
        power_intensity=0.78,
        total_work=15.0,
        serial_fraction=0.04,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=7.0,
        ips_per_work=0.9e9,
    ),
    "ua.C": ApplicationModel(
        name="ua.C",
        power_intensity=1.02,
        total_work=240.0,
        serial_fraction=0.03,
        balancing=Balancing.STATIC,
        mem_bw_cap=11.0,
        ips_per_work=1.4e9,
    ),
    "ft.C": ApplicationModel(
        name="ft.C",
        power_intensity=0.92,
        total_work=140.0,
        serial_fraction=0.015,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=9.0,
        ips_per_work=1.2e9,
    ),
    "cg.C": ApplicationModel(
        name="cg.C",
        power_intensity=0.85,
        total_work=150.0,
        serial_fraction=0.02,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=7.5,
        ips_per_work=1.0e9,
    ),
    "sp.C": ApplicationModel(
        name="sp.C",
        power_intensity=0.97,
        total_work=260.0,
        serial_fraction=0.015,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=12.0,
        ips_per_work=1.4e9,
    ),
}

# Class A on the Odroid XU3-E (full-machine compute rate ≈ 5.4; memory
# bandwidth on the Exynos 5422 is far lower than on the desktop part).
_NPB_A: dict[str, ApplicationModel] = {
    "ep.A": ApplicationModel(
        name="ep.A",
        power_intensity=1.15,
        total_work=26.0,
        serial_fraction=0.002,
        balancing=Balancing.DYNAMIC,
        ips_per_work=2.0e9,
    ),
    "mg.A": ApplicationModel(
        name="mg.A",
        power_intensity=0.8,
        total_work=18.0,
        serial_fraction=0.01,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=1.6,
        ips_per_work=0.9e9,
    ),
    "lu.A": ApplicationModel(
        name="lu.A",
        power_intensity=1.05,
        total_work=110.0,
        serial_fraction=0.03,
        balancing=Balancing.STATIC,
        mem_bw_cap=3.6,
        spin_ips_rate=1.8e9,
        ips_per_work=1.1e9,
    ),
    "bt.A": ApplicationModel(
        name="bt.A",
        power_intensity=1.0,
        total_work=90.0,
        serial_fraction=0.02,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=3.8,
        ips_per_work=1.2e9,
    ),
    "is.A": ApplicationModel(
        name="is.A",
        power_intensity=0.78,
        total_work=4.0,
        serial_fraction=0.04,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=1.9,
        ips_per_work=0.7e9,
    ),
    "ua.A": ApplicationModel(
        name="ua.A",
        power_intensity=1.02,
        total_work=80.0,
        serial_fraction=0.03,
        balancing=Balancing.STATIC,
        mem_bw_cap=3.0,
        ips_per_work=1.1e9,
    ),
    "ft.A": ApplicationModel(
        name="ft.A",
        power_intensity=0.92,
        total_work=30.0,
        serial_fraction=0.015,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=2.4,
        ips_per_work=1.0e9,
    ),
    "cg.A": ApplicationModel(
        name="cg.A",
        power_intensity=0.85,
        total_work=32.0,
        serial_fraction=0.02,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=2.0,
        ips_per_work=0.8e9,
    ),
    "sp.A": ApplicationModel(
        name="sp.A",
        power_intensity=0.97,
        total_work=85.0,
        serial_fraction=0.015,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=3.2,
        ips_per_work=1.2e9,
    ),
}


def npb_model(name: str) -> ApplicationModel:
    """A fresh instance of the named NPB kernel (e.g. ``"ep.C"``)."""
    for table in (_NPB_C, _NPB_A):
        if name in table:
            return replace(table[name])
    raise KeyError(f"unknown NPB benchmark {name!r}")


def npb_intel_suite() -> list[str]:
    """Class C kernel names evaluated on the Intel Raptor Lake."""
    return sorted(_NPB_C)


def npb_odroid_suite() -> list[str]:
    """Class A kernel names evaluated on the Odroid XU3-E."""
    return sorted(_NPB_A)
