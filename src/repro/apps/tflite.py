"""TensorFlow Lite image-recognition workloads (§6.2, Intel platform).

The paper wraps TensorFlow Lite with a HARP-enabled shim that scales
intra-op parallelism at runtime and evaluates two image-recognition
models, VGG and AlexNet.  Inference is convolution-heavy: compute-bound
with a mild bandwidth ceiling, dynamically balanced by the TF thread pool,
and — unlike the generic benchmarks — these applications report their own
utility metric (inferences/s) through libharp, the "true utility" channel
of §4.2.1.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.base import AdaptivityType, ApplicationModel, Balancing

_TFLITE: dict[str, ApplicationModel] = {
    "vgg": ApplicationModel(
        name="vgg",
        power_intensity=1.18,
        adaptivity=AdaptivityType.CUSTOM,
        runtime_lib="tensorflow",
        total_work=420.0,
        serial_fraction=0.03,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=15.0,
        ips_per_work=2.6e9,
        provides_utility=True,
    ),
    "alexnet": ApplicationModel(
        name="alexnet",
        power_intensity=1.12,
        adaptivity=AdaptivityType.CUSTOM,
        runtime_lib="tensorflow",
        total_work=160.0,
        serial_fraction=0.05,
        balancing=Balancing.DYNAMIC,
        mem_bw_cap=13.0,
        ips_per_work=2.2e9,
        provides_utility=True,
    ),
}


def tflite_model(name: str) -> ApplicationModel:
    """A fresh instance of the named TensorFlow Lite workload."""
    if name not in _TFLITE:
        raise KeyError(f"unknown TensorFlow workload {name!r}")
    return replace(_TFLITE[name])


def tflite_suite() -> list[str]:
    """The two image-recognition models of the paper's evaluation."""
    return sorted(_TFLITE)
