"""OpenMP runtime semantics used by libharp's hooks (§4.1.3).

libharp makes moldable OpenMP applications *malleable* by hooking
``GOMP_parallel`` and overriding the team size for each parallel region.
This module models the relevant runtime rules so the hook layer stays
faithful to real GOMP behaviour.

Note on the paper's wording: §4.1.3 states the hook sets num_threads "to
the maximum of the user-given number and the parallelization degree
provided by the HARP RM".  Taken literally this could never shrink a team
below the user's request, which would defeat the scale-down behaviour the
evaluation depends on (binpack, multi-application scenarios).  We follow
the evident intent: an active HARP-provided degree overrides the
user-given team size; without one, the user value (or nproc default)
stands.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OmpEnvironment:
    """The subset of OpenMP ICVs relevant to team sizing."""

    omp_num_threads: int | None = None
    nproc: int = 1
    dynamic: bool = False

    def default_team_size(self) -> int:
        """Team size GOMP would pick with no HARP override."""
        if self.omp_num_threads is not None:
            if self.omp_num_threads < 1:
                raise ValueError("OMP_NUM_THREADS must be >= 1")
            return self.omp_num_threads
        return max(1, self.nproc)


def resolve_team_size(env: OmpEnvironment, harp_degree: int | None) -> int:
    """Team size for one parallel region under the libharp GOMP hook.

    Args:
        env: the application's OpenMP environment.
        harp_degree: parallelization degree pushed by the HARP RM (the
            total-hardware-thread count of the active ERV); None when the
            application is not (yet) managed.
    """
    if harp_degree is not None:
        if harp_degree < 1:
            raise ValueError("HARP parallelization degree must be >= 1")
        return harp_degree
    return env.default_team_size()
